package ooc

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/tensor"
)

// tiledReader serializes x into an in-memory v3 image with the given
// tile size and opens a TileReader over it.
func tiledReader(t *testing.T, x *tensor.COO, tileNNZ int) *tensor.TileReader {
	t.Helper()
	var buf bytes.Buffer
	if err := tensor.WriteBinaryTiled(&buf, x, tileNNZ); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	tr, err := tensor.NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func testTensor(t *testing.T, seed int64) *tensor.COO {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return tensor.RandomCOO([]tensor.Index{64, 48, 40}, 20000, rng)
}

func factorMats(x *tensor.COO, r int) []*tensor.Matrix {
	rng := rand.New(rand.NewSource(777))
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	return mats
}

// streamBudget picks a budget large enough for double buffering but a
// small fraction of the total tensor bytes, so the test actually
// exercises leasing and eviction.
func streamBudget(t *testing.T, tr *tensor.TileReader) int64 {
	t.Helper()
	budget := 5 * tr.MaxTileBytes()
	total := int64(4 * (tr.Order() + 1) * int(tr.NNZ))
	if budget*4 > total {
		t.Fatalf("test geometry broken: budget %d not ≪ tensor bytes %d", budget, total)
	}
	return budget
}

// TestStreamingMttkrpBitExact is the core determinism contract: the
// deterministic streamed MTTKRP must be bit-identical to the serial
// in-core kernel on the same (naturally sorted) data, with peak leased
// bytes under a budget far below the tensor size.
func TestStreamingMttkrpBitExact(t *testing.T) {
	x := testTensor(t, 1)
	mats := factorMats(x, 16)
	tr := tiledReader(t, x, 256)
	if tr.NumTiles() < 8 {
		t.Fatalf("test geometry broken: only %d tiles", tr.NumTiles())
	}
	budget := streamBudget(t, tr)

	xs := x.Clone()
	xs.SortNatural()
	for mode := 0; mode < x.Order(); mode++ {
		plan, err := core.PrepareMttkrp(xs, mode, 16)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plan.ExecuteSeq(mats)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Mttkrp(context.Background(), tr, mats, mode, Options{MemBudget: budget, Deterministic: true})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("mode %d: output[%d] = %x, in-core %x: not bit-exact", mode, i, got.Data[i], want.Data[i])
			}
		}
		if st.PeakBytes > budget {
			t.Fatalf("mode %d: peak %d exceeds budget %d", mode, st.PeakBytes, budget)
		}
		if st.PeakBytes == 0 || st.Tiles != int64(tr.NumTiles()) || st.Evictions != st.Tiles {
			t.Fatalf("mode %d: implausible stats %+v", mode, st)
		}
		if st.BytesRead != int64(4*(x.Order()+1)*x.NNZ()) {
			t.Fatalf("mode %d: read %d bytes, want full payload", mode, st.BytesRead)
		}
		if st.PrefetchHits+st.PrefetchStalls != st.Tiles {
			t.Fatalf("mode %d: hits %d + stalls %d != tiles %d", mode, st.PrefetchHits, st.PrefetchStalls, st.Tiles)
		}
	}
}

// TestStreamingTtvBitExact is the Ttv leg: natural tile order delivers
// each fiber's entries in ascending product-mode order — the same
// order the in-core fiber sort produces — so the deterministic stream
// reproduces the in-core serial bits fiber by fiber.
func TestStreamingTtvBitExact(t *testing.T) {
	x := testTensor(t, 2)
	tr := tiledReader(t, x, 256)
	budget := streamBudget(t, tr)
	for mode := 0; mode < x.Order(); mode++ {
		rng := rand.New(rand.NewSource(int64(mode)))
		v := tensor.RandomVector(int(x.Dims[mode]), rng)
		want, err := core.Ttv(x, v, mode)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Ttv(context.Background(), tr, v, mode, Options{MemBudget: budget, Deterministic: true})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if got.NNZ() != want.NNZ() {
			t.Fatalf("mode %d: %d output fibers, in-core has %d", mode, got.NNZ(), want.NNZ())
		}
		wm, gm := want.ToMap(), got.ToMap()
		for k, wv := range wm {
			if gv, ok := gm[k]; !ok || gv != wv {
				t.Fatalf("mode %d: fiber %v = %x, in-core %x: not bit-exact", mode, k, gm[k], wv)
			}
		}
		if st.PeakBytes > budget || st.Tiles != int64(tr.NumTiles()) {
			t.Fatalf("mode %d: implausible stats %+v", mode, st)
		}
	}
}

// TestStreamingParallelAgrees runs the parallel mode and checks both
// kernels against the in-core reference within the suite tolerance.
func TestStreamingParallelAgrees(t *testing.T) {
	const tol = 2e-3
	x := testTensor(t, 3)
	mats := factorMats(x, 16)
	tr := tiledReader(t, x, 256)
	budget := streamBudget(t, tr)
	for mode := 0; mode < x.Order(); mode++ {
		plan, err := core.PrepareMttkrp(x, mode, 16)
		if err != nil {
			t.Fatal(err)
		}
		want, err := plan.ExecuteSeq(mats)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Mttkrp(context.Background(), tr, mats, mode, Options{MemBudget: budget})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		for i := range want.Data {
			if d := float64(got.Data[i]) - float64(want.Data[i]); d > tol || d < -tol {
				t.Fatalf("mode %d: output[%d] off by %g", mode, i, d)
			}
		}

		rng := rand.New(rand.NewSource(int64(mode)))
		v := tensor.RandomVector(int(x.Dims[mode]), rng)
		wantY, err := core.Ttv(x, v, mode)
		if err != nil {
			t.Fatal(err)
		}
		gotY, _, err := Ttv(context.Background(), tr, v, mode, Options{MemBudget: budget})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if d := tensor.AbsDiff(wantY, gotY); d > tol {
			t.Fatalf("mode %d: Ttv deviation %g", mode, d)
		}
	}
}

// TestBudgetTooSmall pins the fail-fast path: a budget below one
// tile's working set can never stream.
func TestBudgetTooSmall(t *testing.T) {
	x := testTensor(t, 4)
	mats := factorMats(x, 16)
	tr := tiledReader(t, x, 1024)
	_, _, err := Mttkrp(context.Background(), tr, mats, 0, Options{MemBudget: 64, Deterministic: true})
	if !errors.Is(err, ErrBudgetTooSmall) {
		t.Fatalf("err = %v, want ErrBudgetTooSmall", err)
	}
}

// TestCancellation: a canceled context aborts the stream with its
// error and the prefetch goroutine exits (the race detector and test
// timeout police the leak).
func TestCancellation(t *testing.T) {
	x := testTensor(t, 5)
	mats := factorMats(x, 16)
	tr := tiledReader(t, x, 64)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Mttkrp(ctx, tr, mats, 0, Options{Deterministic: true})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCorruptTileSurfacesError: a bit-flipped tile payload becomes a
// checksum error from the stream, never a panic or silent corruption.
func TestCorruptTileSurfacesError(t *testing.T) {
	x := testTensor(t, 6)
	mats := factorMats(x, 16)
	var buf bytes.Buffer
	if err := tensor.WriteBinaryTiled(&buf, x, 512); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	tr, err := tensor.NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	mid := tr.Tiles[tr.NumTiles()/2]
	raw[mid.Offset+uint64(mid.Bytes)/2] ^= 0x20
	if _, _, err = Mttkrp(context.Background(), tr, mats, 0, Options{Deterministic: true}); err == nil {
		t.Fatal("corrupt tile streamed without error")
	}
}

// TestStreamingValidation covers the argument validation paths.
func TestStreamingValidation(t *testing.T) {
	x := testTensor(t, 7)
	tr := tiledReader(t, x, 1024)
	mats := factorMats(x, 16)
	if _, _, err := Mttkrp(context.Background(), tr, mats, 9, Options{}); err == nil {
		t.Fatal("out-of-range mode accepted")
	}
	if _, _, err := Mttkrp(context.Background(), tr, mats[:2], 0, Options{}); err == nil {
		t.Fatal("short factor list accepted")
	}
	if _, _, err := Ttv(context.Background(), tr, make(tensor.Vector, 3), 0, Options{}); err == nil {
		t.Fatal("wrong vector length accepted")
	}
}

// TestEmptyTilesStream: a stream containing empty tiles computes the
// same result (the CI geometry can produce them at dataset edges).
func TestEmptyTilesStream(t *testing.T) {
	x := testTensor(t, 8)
	mats := factorMats(x, 16)
	// One tile per 4096 entries over ~5000 nnz yields a short last tile;
	// shrink until several tiles exist, then compare against one tile.
	trMany := tiledReader(t, x, 512)
	trOne := tiledReader(t, x, 1<<30)
	a, _, err := Mttkrp(context.Background(), trMany, mats, 1, Options{Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Mttkrp(context.Background(), trOne, mats, 1, Options{Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("tiling changed deterministic output at %d", i)
		}
	}
}
