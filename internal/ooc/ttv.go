package ooc

import (
	"context"
	"encoding/binary"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// ttvAcc is the streaming fiber accumulator: the order-(N-1) sparse
// output discovered fiber-by-fiber as tiles arrive. Fibers are keyed
// by their packed non-product coordinates; the dictionary and the
// output arrays are O(MF) in-core working state (the kernel's output),
// not charged against the tile budget.
type ttvAcc struct {
	dict   map[string]int32
	coords [][]tensor.Index // one slice per non-product mode
	vals   []tensor.Value
	key    []byte  // packed-coordinate scratch, 4 bytes per mode
	fids   []int32 // per-entry fiber ids of the current tile
}

// resolve maps one entry's non-product coordinates to its fiber id,
// appending a new output slot on first sight. The map lookup converts
// the scratch key without allocating; only an insert interns it.
func (a *ttvAcc) resolve(tl *tensor.Tile, otherModes []int, x int) int32 {
	for i, n := range otherModes {
		binary.LittleEndian.PutUint32(a.key[4*i:], tl.Inds[n][x])
	}
	if id, ok := a.dict[string(a.key)]; ok {
		return id
	}
	id := int32(len(a.vals))
	a.dict[string(a.key)] = id
	for i, n := range otherModes {
		a.coords[i] = append(a.coords[i], tl.Inds[n][x])
	}
	a.vals = append(a.vals, 0)
	return id
}

// Ttv streams the tensor-times-vector product over the tile reader:
// per-fiber reductions y_f = Σ x·v[k] accumulated across tiles. The
// tile stream is naturally sorted, so each fiber's entries arrive in
// ascending mode-index order — the same order the in-core kernel's
// fiber sort produces — which makes the deterministic mode bit-exact
// against the serial in-core Ttv.
func Ttv(ctx context.Context, tr *tensor.TileReader, v tensor.Vector, mode int, opt Options) (*tensor.COO, Stats, error) {
	if err := validateReader(tr, mode); err != nil {
		return nil, Stats{}, err
	}
	if len(v) != int(tr.Dims[mode]) {
		return nil, Stats{}, fmt.Errorf("ooc: Ttv vector length %d, want mode-%d size %d", len(v), mode, tr.Dims[mode])
	}
	order := tr.Order()
	otherModes := make([]int, 0, order-1)
	outDims := make([]tensor.Index, 0, order-1)
	for n := 0; n < order; n++ {
		if n != mode {
			otherModes = append(otherModes, n)
			outDims = append(outDims, tr.Dims[n])
		}
	}
	acc := &ttvAcc{
		dict:   make(map[string]int32),
		coords: make([][]tensor.Index, len(otherModes)),
		key:    make([]byte, 4*len(otherModes)),
	}

	sched := opt.Sched
	sched.Ctx = ctx
	st, err := stream(ctx, tr, "Ttv/COO@ooc", opt, func(_ int, tl *tensor.Tile) error {
		cnt := tl.NNZ()
		if cnt == 0 {
			return nil
		}
		kInd := tl.Inds[mode]
		xv := tl.Vals
		if opt.Deterministic {
			for x := 0; x < cnt; x++ {
				acc.vals[acc.resolve(tl, otherModes, x)] += xv[x] * v[kInd[x]]
			}
			return nil
		}
		// Fiber-id resolution mutates the dictionary and is serial; the
		// reduction over resolved ids then parallelizes with run-local
		// accumulation and one atomic flush per run, like the in-core
		// segmented kernel.
		if cap(acc.fids) < cnt {
			acc.fids = make([]int32, cnt)
		}
		fids := acc.fids[:cnt]
		for x := 0; x < cnt; x++ {
			fids[x] = acc.resolve(tl, otherModes, x)
		}
		vals := acc.vals
		return parallel.For(cnt, sched, func(lo, hi, _ int) {
			for m := lo; m < hi; {
				f := fids[m]
				var run tensor.Value
				for ; m < hi && fids[m] == f; m++ {
					run += xv[m] * v[kInd[m]]
				}
				parallel.AtomicAddFloat32(&vals[f], run)
			}
		})
	})
	if err != nil {
		return nil, st, err
	}
	out := &tensor.COO{Dims: outDims, Inds: acc.coords, Vals: acc.vals}
	for i := range out.Inds {
		if out.Inds[i] == nil {
			out.Inds[i] = []tensor.Index{}
		}
	}
	if out.Vals == nil {
		out.Vals = []tensor.Value{}
	}
	return out, st, nil
}

// TtvFlops is the Table 1 work of one streamed execution: 2M.
func TtvFlops(tr *tensor.TileReader) int64 { return 2 * int64(tr.NNZ) }
