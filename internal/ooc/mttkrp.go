package ooc

import (
	"context"
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Mttkrp streams the matricized-tensor-times-Khatri-Rao-product over
// the tile reader: each tile's non-zeros accumulate into the dense
// output matrix Ã ∈ R^{Dims[mode] × R} exactly as the in-core COO
// kernel would, but with only a budgeted window of the tensor
// resident. mats follows the in-core contract: one factor matrix per
// mode, mats[mode] participating only via its shape.
func Mttkrp(ctx context.Context, tr *tensor.TileReader, mats []*tensor.Matrix, mode int, opt Options) (*tensor.Matrix, Stats, error) {
	if err := validateReader(tr, mode); err != nil {
		return nil, Stats{}, err
	}
	order := tr.Order()
	if len(mats) != order {
		return nil, Stats{}, fmt.Errorf("ooc: Mttkrp got %d factor matrices, want %d", len(mats), order)
	}
	r := 0
	for m, u := range mats {
		if m == mode {
			continue // output slot; may even be nil
		}
		if u == nil {
			return nil, Stats{}, fmt.Errorf("ooc: Mttkrp factor matrix %d is nil", m)
		}
		if u.Rows != int(tr.Dims[m]) {
			return nil, Stats{}, fmt.Errorf("ooc: Mttkrp factor %d has %d rows, want %d", m, u.Rows, tr.Dims[m])
		}
		if r == 0 {
			r = u.Cols
		} else if u.Cols != r {
			return nil, Stats{}, fmt.Errorf("ooc: Mttkrp factor %d has %d cols, want %d", m, u.Cols, r)
		}
	}
	if r <= 0 {
		return nil, Stats{}, fmt.Errorf("ooc: Mttkrp needs R >= 1")
	}
	out := tensor.NewMatrix(int(tr.Dims[mode]), r)

	sched := opt.Sched
	sched.Ctx = ctx
	st, err := stream(ctx, tr, "Mttkrp/COO@ooc", opt, func(_ int, tl *tensor.Tile) error {
		cnt := tl.NNZ()
		if cnt == 0 {
			return nil
		}
		if opt.Deterministic {
			mttkrpRange(tl, mode, r, mats, out.Data, 0, cnt, false)
			return nil
		}
		return parallel.For(cnt, sched, func(lo, hi, _ int) {
			mttkrpRange(tl, mode, r, mats, out.Data, lo, hi, true)
		})
	})
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// MttkrpFlops is the Table 1 work of one streamed execution: N·M·R.
func MttkrpFlops(tr *tensor.TileReader, r int) int64 {
	return int64(tr.Order()) * int64(tr.NNZ) * int64(r)
}

// mttkrpRange accumulates tile entries [lo, hi) into out, mirroring
// the in-core kernel's accumulation order (order-3 fast path, general
// Hadamard loop otherwise) so the deterministic stream reproduces the
// serial in-core bits.
func mttkrpRange(tl *tensor.Tile, mode, r int, mats []*tensor.Matrix, out []tensor.Value, lo, hi int, atomicUpd bool) {
	nInd := tl.Inds[mode]
	xv := tl.Vals
	order := len(tl.Inds)
	if order == 3 {
		m1, m2 := otherTwoModes(mode)
		bInd, cInd := tl.Inds[m1], tl.Inds[m2]
		bd, cd := mats[m1].Data, mats[m2].Data
		for x := lo; x < hi; x++ {
			v := xv[x]
			bo := int(bInd[x]) * r
			co := int(cInd[x]) * r
			oo := int(nInd[x]) * r
			if atomicUpd {
				for c := 0; c < r; c++ {
					parallel.AtomicAddFloat32(&out[oo+c], v*bd[bo+c]*cd[co+c])
				}
			} else {
				for c := 0; c < r; c++ {
					out[oo+c] += v * bd[bo+c] * cd[co+c]
				}
			}
		}
		return
	}
	prod := make([]tensor.Value, r)
	for x := lo; x < hi; x++ {
		v := xv[x]
		for c := 0; c < r; c++ {
			prod[c] = v
		}
		for mo := 0; mo < order; mo++ {
			if mo == mode {
				continue
			}
			row := mats[mo].Row(int(tl.Inds[mo][x]))
			for c := 0; c < r; c++ {
				prod[c] *= row[c]
			}
		}
		oo := int(nInd[x]) * r
		if atomicUpd {
			for c := 0; c < r; c++ {
				parallel.AtomicAddFloat32(&out[oo+c], prod[c])
			}
		} else {
			for c := 0; c < r; c++ {
				out[oo+c] += prod[c]
			}
		}
	}
}

func otherTwoModes(mode int) (int, int) {
	switch mode {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}
