package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
)

// HTTPServer is an HTTP server whose listener was bound synchronously:
// StartHTTP returns an error immediately on a bad address instead of
// racing an asynchronous ListenAndServe failure against the caller's
// success banner (the pastabench -pprof bug this helper replaced).
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	errc chan error
}

// StartHTTP binds addr, then serves handler (nil = the default mux, as
// net/http treats it) on a background goroutine. The bind happens on
// the caller's goroutine, so "address in use", "invalid address", and
// permission failures are returned here — a caller that gets a non-nil
// *HTTPServer is guaranteed to be listening on Addr().
func StartHTTP(addr string, handler http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: handler},
		errc: make(chan error, 1),
	}
	go func() {
		if err := hs.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			hs.errc <- err
		}
		close(hs.errc)
	}()
	return hs, nil
}

// Addr returns the bound listen address (resolved, so ":0" callers see
// the real port).
func (h *HTTPServer) Addr() string { return h.ln.Addr().String() }

// Err yields any terminal serve error; the channel closes when the
// serve loop exits.
func (h *HTTPServer) Err() <-chan error { return h.errc }

// Shutdown drains in-flight requests and stops the server.
func (h *HTTPServer) Shutdown(ctx context.Context) error { return h.srv.Shutdown(ctx) }

// Close stops the server immediately.
func (h *HTTPServer) Close() error { return h.srv.Close() }
