package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// postRunHeaders is postRun plus the response headers, for tests that
// assert on Retry-After.
func postRunHeaders(t *testing.T, base string, req RunRequest, client string) (int, http.Header, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		hr.Header.Set("X-Pasta-Client", client)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// TestRetryAfterTracksQuotaWindow: the 429 Retry-After header must
// follow the configured quota window, not a hardcoded constant — two
// daemons with different windows hand out different hints, each equal
// to the remaining window (full, since the window just opened).
func TestRetryAfterTracksQuotaWindow(t *testing.T) {
	for _, window := range []time.Duration{30 * time.Second, 120 * time.Second} {
		_, ts := newTestDaemon(t, Config{QuotaLimit: 1, QuotaWindow: window})
		req := RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "COO"}
		if status, _, body := postRunHeaders(t, ts.URL, req, "windowed"); status != http.StatusOK {
			t.Fatalf("window %v: first request HTTP %d: %s", window, status, body)
		}
		status, hdr, body := postRunHeaders(t, ts.URL, req, "windowed")
		if status != http.StatusTooManyRequests {
			t.Fatalf("window %v: second request HTTP %d, want 429: %s", window, status, body)
		}
		ra := hdr.Get("Retry-After")
		secs, err := strconv.Atoi(ra)
		if err != nil {
			t.Fatalf("window %v: Retry-After %q is not delta-seconds", window, ra)
		}
		want := int(window / time.Second)
		// The first request consumed a few milliseconds of the window;
		// ceil rounding keeps the hint at the full window unless the test
		// machine stalled for over a second.
		if secs < want-1 || secs > want {
			t.Fatalf("window %v: Retry-After %d, want ~%d (header must track the window)", window, secs, want)
		}
	}
}

// TestRetryAfterLifetimeQuotaFloor: a windowless (lifetime) budget never
// recovers, so the header falls back to the 1-second floor rather than
// inventing a recovery time.
func TestRetryAfterLifetimeQuotaFloor(t *testing.T) {
	_, ts := newTestDaemon(t, Config{QuotaLimit: 1})
	req := RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "COO"}
	if status, _, body := postRunHeaders(t, ts.URL, req, "lifetime"); status != http.StatusOK {
		t.Fatalf("first request HTTP %d: %s", status, body)
	}
	status, hdr, _ := postRunHeaders(t, ts.URL, req, "lifetime")
	if status != http.StatusTooManyRequests {
		t.Fatalf("second request HTTP %d, want 429", status)
	}
	if ra := hdr.Get("Retry-After"); ra != "1" {
		t.Fatalf("lifetime-budget Retry-After %q, want the 1s floor", ra)
	}
}

// TestOverloadRetryAfterDerived: the 503 path must also send a derived
// Retry-After. The in-flight slot is occupied directly (in-package
// test), so rejection is deterministic.
func TestOverloadRetryAfterDerived(t *testing.T) {
	s, ts := newTestDaemon(t, Config{MaxInflight: 1})
	s.inflight <- struct{}{}
	defer func() { <-s.inflight }()

	req := RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "COO"}
	status, hdr, body := postRunHeaders(t, ts.URL, req, "")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("saturated daemon: HTTP %d, want 503: %s", status, body)
	}
	secs, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || secs < 1 || secs > 3600 {
		t.Fatalf("overload Retry-After %q, want clamped delta-seconds", hdr.Get("Retry-After"))
	}
}

// TestRetryAfterSeconds pins the header rendering: ceil to whole
// seconds, floor 1, cap 3600.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-5 * time.Second, "1"},
		{300 * time.Millisecond, "1"},
		{1500 * time.Millisecond, "2"},
		{30 * time.Second, "30"},
		{2 * time.Hour, "3600"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

// TestDaemonDistRun drives the distributed path end to end over HTTP:
// a ranks request shards the dataset across simulated workers, the
// response carries verified results plus measured comm traffic, the
// engine is cached across requests, and /metrics exports the dist
// counters.
func TestDaemonDistRun(t *testing.T) {
	obs.EnableCounters(true)
	defer obs.EnableCounters(false)
	_, ts := newTestDaemon(t, Config{})

	cases := []struct {
		name string
		req  RunRequest
	}{
		{"mttkrp-coo", RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Ranks: 4, Verify: true}},
		{"mttkrp-hicoo", RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "HiCOO", Ranks: 4, Verify: true}},
		{"ttv-coo", RunRequest{Dataset: "nell2", Kernel: "Ttv", Format: "COO", Mode: 1, Ranks: 2, Verify: true}},
	}
	for _, tc := range cases {
		status, body := postRun(t, ts.URL, tc.req, "dist")
		if status != http.StatusOK {
			t.Fatalf("%s: HTTP %d: %s", tc.name, status, body)
		}
		rr := decodeRun(t, body)
		if rr.Backend != "dist" || !strings.HasSuffix(rr.Variant, "@dist") {
			t.Fatalf("%s: response not routed to dist: %+v", tc.name, rr)
		}
		if rr.Dist == nil {
			t.Fatalf("%s: response missing dist section: %s", tc.name, body)
		}
		if rr.Dist.Ranks != tc.req.Ranks || rr.Dist.LiveWorkers != tc.req.Ranks {
			t.Fatalf("%s: dist section %+v, want %d healthy ranks", tc.name, rr.Dist, tc.req.Ranks)
		}
		if rr.Dist.CommBytes <= 0 || rr.Dist.CommMessages <= 0 || rr.Dist.ModeledCommSec <= 0 {
			t.Fatalf("%s: comm not accounted: %+v", tc.name, rr.Dist)
		}
		if rr.Dist.Reshards != 0 {
			t.Fatalf("%s: unexpected re-shards on healthy run: %+v", tc.name, rr.Dist)
		}
		if rr.Deviation == nil || *rr.Deviation > 2e-3 {
			t.Fatalf("%s: dist result not verified against serial reference: %+v", tc.name, rr)
		}
		if rr.Flops <= 0 {
			t.Fatalf("%s: flops not reported: %+v", tc.name, rr)
		}

		// Same (dataset, format, ranks) → cached engine.
		status, body = postRun(t, ts.URL, tc.req, "dist")
		if status != http.StatusOK {
			t.Fatalf("%s repeat: HTTP %d: %s", tc.name, status, body)
		}
		if rr := decodeRun(t, body); !rr.CacheHit {
			t.Fatalf("%s repeat: engine not cached: %+v", tc.name, rr)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	mb := buf.String()
	for _, want := range []string{"pasta_dist_comm_bytes", "pasta_dist_comm_messages"} {
		line := ""
		for _, l := range strings.Split(mb, "\n") {
			if strings.HasPrefix(l, want+" ") {
				line = l
			}
		}
		if line == "" || strings.HasSuffix(line, " 0") {
			t.Fatalf("/metrics %s missing or zero after dist traffic:\n%s", want, line)
		}
	}
}

// TestDaemonDistRequestErrors: malformed ranks requests fail typed, not
// 500.
func TestDaemonDistRequestErrors(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})

	cases := []struct {
		name string
		req  RunRequest
	}{
		{"negative ranks", RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Ranks: -1}},
		{"too many ranks", RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Ranks: maxDistRanks + 1}},
		{"unsupported kernel", RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "COO", Ranks: 2}},
		{"unsupported format", RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "CSF", Ranks: 2}},
		{"mode out of range", RunRequest{Dataset: "nell2", Kernel: "Ttv", Format: "COO", Mode: 7, Ranks: 2}},
	}
	for _, tc := range cases {
		status, body := postRun(t, ts.URL, tc.req, "")
		if status != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400: %s", tc.name, status, body)
			continue
		}
		if eb := decodeError(t, body); eb.Type != "bad-request" {
			t.Errorf("%s: error type %q, want \"bad-request\"", tc.name, eb.Type)
		}
	}
}
