package serve

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/kernelreg"
)

// Cache keys are shared between the lookup paths and the cost model so
// the two can never drift: requestCost peeks the same keys workbench /
// instance / distEngine fill.
func wbKey(name string) string { return "wb:" + name }

func instKey(name string, v *kernelreg.Variant, mode int) string {
	return fmt.Sprintf("inst:%s/%s/m%d", name, v, mode)
}

func distKey(name string, format dist.Format, ranks int) string {
	return fmt.Sprintf("dist:%s/%s/p%d", name, format, ranks)
}

// requestCost predicts the working-set bytes admitting req would add to
// the daemon, before anything is materialized. Components already
// resident (the dataset workbench, the prepared instance) are peeked in
// the cache and skipped, so a warm request is charged only its
// per-execution transient — the property that lets cheap warm requests
// keep flowing while one huge cold request waits at the admission gate.
//
// Request-level failures (unknown dataset, unparseable variant) surface
// here with the same typed errors the execution path would produce, so
// a doomed request is rejected before it is charged.
func (s *Server) requestCost(req RunRequest) (int64, error) {
	k, f, b, err := parseVariant(req)
	if err != nil {
		return 0, err
	}
	e, err := dataset.ByID(strings.TrimSpace(req.Dataset))
	if err != nil {
		return 0, &badRequestError{http.StatusNotFound, ErrorBody{
			Type: "not-found", Message: err.Error()}}
	}
	sdims := e.ScaledDims(s.cfg.NNZ)
	dims := make([]int64, len(sdims))
	for i, d := range sdims {
		dims[i] = int64(d)
	}
	nnz := int64(s.cfg.NNZ)
	fp := kernelreg.EstimateFootprint(k, f, dims, nnz, s.cfg.Bench)

	cost := fp.Run
	if _, ok := s.cache.peek(wbKey(e.Name)); !ok {
		cost += fp.Workbench
	}
	if req.Ranks > 0 {
		// The distributed engine shards the tensor (one COO copy spread
		// across workers, charged as one), and each rank holds a partial
		// of the mode-dims[mode] × R output for the allreduce.
		mode := req.Mode
		if mode < 0 || mode >= len(dims) {
			mode = 0
		}
		distCost := fp.Workbench + int64(req.Ranks)*dims[mode]*int64(s.cfg.Bench.R)*4
		var format dist.Format
		if strings.EqualFold(req.Format, "HiCOO") {
			format = dist.FormatHiCOO
		}
		if _, ok := s.cache.peek(distKey(e.Name, format, req.Ranks)); !ok {
			cost += distCost
		}
		return cost, nil
	}

	var v *kernelreg.Variant
	if strings.TrimSpace(req.Backend) == "" {
		v, err = kernelreg.HostVariant(k, f)
	} else {
		v, err = kernelreg.Lookup(k, f, b)
	}
	if err != nil {
		return 0, err
	}
	mode := req.Mode
	if !v.Caps.ModeDependent {
		mode = 0
	}
	if _, ok := s.cache.peek(instKey(e.Name, v, mode)); !ok {
		cost += fp.Instance
	}
	return cost, nil
}
