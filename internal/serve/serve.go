// Package serve implements pastad, the benchmark-as-a-service daemon:
// an HTTP/JSON front door over the kernel-variant registry that accepts
// kernel-execution requests from many concurrent clients.
//
// The daemon composes the suite's existing subsystems rather than
// re-implementing them:
//
//   - a sharded LRU cache holds materialized dataset tensors (one
//     goroutine-safe kernelreg.Workbench per dataset) and prepared
//     kernelreg.Instance objects keyed by (dataset, variant, mode),
//     with singleflight fills so a thundering herd builds each once;
//   - identical concurrent requests batch onto one in-flight execution
//     of the shared prepared Instance (an Instance is single-writer);
//   - every execution walks the resilience degradation ladder (native
//     backend → verified serial fallback) under one daemon-wide Runner,
//     whose per-backend circuit breakers are surfaced in responses;
//   - admission control caps concurrent executions and per-client
//     quotas are accounted in the internal/obs counter registry, which
//     /metrics exports in Prometheus text format next to the runtime
//     counters of every other subsystem.
//
// Failures map onto HTTP statuses through the resilience error
// taxonomy: unregistered variants are 404, open breakers 503, trial
// deadlines 504, non-finite outputs 422, contained panics 500,
// exhausted ladders 502, quota exhaustion 429.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/govern"
	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/roofline"
)

var (
	ctrRequests    = obs.GetCounter("daemon.requests")
	ctrErrors      = obs.GetCounter("daemon.errors")
	ctrBatchRuns   = obs.GetCounter("daemon.batch.runs")
	ctrBatchJoined = obs.GetCounter("daemon.batch.joined")
	ctrLatencyUsec = obs.GetCounter("daemon.request_usec")
	// ctrCancelled counts requests abandoned by their client (disconnect
	// or per-request deadline) whose work was stopped and quota refunded.
	ctrCancelled = obs.GetCounter("govern.cancelled")
)

// statusClientClosedRequest is the nginx-convention status for a
// request whose client hung up before the response was ready.
const statusClientClosedRequest = 499

// deadlineHeader is the per-request deadline a client may set (a Go
// duration string, e.g. "250ms"); the trial is cancelled when it
// expires, independent of the daemon-wide Config.Timeout.
const deadlineHeader = "X-Pasta-Deadline"

// Config carries the daemon's tunables; zero values select the
// documented defaults.
type Config struct {
	// NNZ is the stand-in non-zero count datasets materialize with
	// (default 5000; real tensors from PASTA_TENSOR_DIR always win).
	NNZ int
	// Seed is the dataset generation seed (default 42).
	Seed int64
	// Bench carries the kernel parameters (R, block bits, segment size,
	// schedule); zero fields normalize to the paper defaults.
	Bench kernelreg.Config
	// CacheShards is the LRU shard count (default 8).
	CacheShards int
	// ShardCap is the LRU capacity per shard (default 32 entries).
	ShardCap int
	// MaxInflight caps concurrently executing requests; excess requests
	// are rejected 503 rather than queued (default 2×GOMAXPROCS).
	MaxInflight int
	// QuotaLimit is the per-client admitted-request budget per
	// QuotaWindow; 0 disables quotas.
	QuotaLimit int64
	// QuotaWindow is the quota accounting window; 0 makes QuotaLimit a
	// lifetime budget.
	QuotaWindow time.Duration
	// Timeout bounds one trial (all rungs and retries; default 30s).
	Timeout time.Duration
	// Runner executes trials; tests inject one to observe breakers.
	// Defaults to a fresh resilience.Runner.
	Runner *resilience.Runner
	// MemBudget is the daemon-wide working-set budget requests are
	// admitted against (bytes; 0 → govern.DefaultBudget, half of the
	// memory limit or system RAM).
	MemBudget int64
	// AdmitWait is how long an over-capacity request may wait at the
	// admission gate before it is shed 503 (default 100ms).
	AdmitWait time.Duration
	// DrainGrace bounds a graceful drain: how long BeginDrain waits for
	// in-flight leases before giving up (default 10s); also the
	// Retry-After hint rejected joiners get while draining.
	DrainGrace time.Duration
}

// Server is the daemon state shared by all requests.
type Server struct {
	cfg      Config
	cache    *cache
	quotas   *quotas
	runner   *resilience.Runner
	gov      *govern.Governor
	inflight chan struct{}
	start    time.Time
	mux      *http.ServeMux
}

// New builds a Server, normalizing zero Config fields.
func New(cfg Config) *Server {
	if cfg.NNZ <= 0 {
		cfg.NNZ = 5000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 8
	}
	if cfg.ShardCap <= 0 {
		cfg.ShardCap = 32
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	s := &Server{
		cfg:    cfg,
		cache:  newCache(cfg.CacheShards, cfg.ShardCap),
		quotas: newQuotas(cfg.QuotaLimit, cfg.QuotaWindow),
		runner: cfg.Runner,
		gov: govern.New(govern.Config{
			BudgetBytes: cfg.MemBudget,
			AdmitWait:   cfg.AdmitWait,
			DrainGrace:  cfg.DrainGrace,
		}),
		inflight: make(chan struct{}, cfg.MaxInflight),
		start:    time.Now(),
		mux:      http.NewServeMux(),
	}
	if s.runner == nil {
		s.runner = &resilience.Runner{}
	}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/variants", s.handleVariants)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/run", s.handleRun)
	return s
}

// Handler returns the daemon's HTTP handler (httptest mounts it
// directly; pastad serves it via StartHTTP).
func (s *Server) Handler() http.Handler { return s.mux }

// RunRequest is the POST /run body.
type RunRequest struct {
	// Dataset is a Table 2/3 tensor by ID or name ("r2", "nell2", ...).
	Dataset string `json:"dataset"`
	// Kernel is one of Tew, Ts, Ttv, Ttm, Mttkrp (case-insensitive).
	Kernel string `json:"kernel"`
	// Format is one of COO, HiCOO, CSF, fCOO (case-insensitive).
	Format string `json:"format"`
	// Backend is omp, gpu, multigpu, or ooc (out-of-core streaming);
	// empty picks the host variant the measurement harness would (OMP
	// first, then simulated GPU).
	Backend string `json:"backend"`
	// Mode is the tensor mode for mode-dependent kernels (Ttv, Ttm,
	// Mttkrp); ignored for Tew/Ts.
	Mode int `json:"mode"`
	// Verify adds the worst relative deviation from the serial-COO
	// reference to the response (computed once per variant, cached).
	Verify bool `json:"verify"`
	// Fallback controls the serial rung of the degradation ladder;
	// omitted means true. Setting false turns a native-backend failure
	// into a typed error response instead of a degraded result.
	Fallback *bool `json:"fallback"`
	// Ranks > 0 routes the request through the distributed execution
	// layer: the tensor is sharded mode-wise across that many simulated
	// workers (Mttkrp: ring allreduce over partials; Ttv: rooted
	// gather), and the response reports measured + alpha-beta-modeled
	// communication in "dist". Supported for Mttkrp and Ttv on COO and
	// HiCOO.
	Ranks int `json:"ranks"`
}

// RunResponse is the POST /run success body.
type RunResponse struct {
	Dataset string `json:"dataset"`
	Variant string `json:"variant"`
	Mode    int    `json:"mode"`
	// Outcome is the resilience report: "ok", "recovered",
	// "fell-back:serial", ...
	Outcome  string `json:"outcome"`
	Backend  string `json:"backend"`
	FellFrom string `json:"fellFrom,omitempty"`
	Attempts int    `json:"attempts"`
	Strategy string `json:"strategy,omitempty"`
	// Plan names the conversion path the planner chose while preparing
	// this variant's instance (e.g. "reuse-csf:levels.BlockRoot"); empty
	// when no planned conversion happened or the instance was cached.
	Plan string `json:"plan,omitempty"`
	// Flops is the Table 1 work of one execution; GFLOPS divides it by
	// the measured wall time.
	Flops      int64   `json:"flops"`
	ElapsedSec float64 `json:"elapsedSec"`
	GFLOPS     float64 `json:"gflops"`
	// CacheHit reports whether the prepared Instance already existed;
	// WorkbenchHit whether the dataset tensor did.
	CacheHit     bool `json:"cacheHit"`
	WorkbenchHit bool `json:"workbenchHit"`
	// Batched reports the request was coalesced onto another identical
	// in-flight execution and shares its result.
	Batched bool `json:"batched"`
	// Deviation is the worst relative deviation vs the serial-COO
	// reference (present when the request asked to verify).
	Deviation *float64 `json:"deviation,omitempty"`
	// BreakersOpen lists backends whose circuit breaker is currently
	// open on this daemon.
	BreakersOpen []string `json:"breakersOpen,omitempty"`
	// Dist reports the distributed execution when the request asked for
	// ranks > 0.
	Dist *DistInfo `json:"dist,omitempty"`
	// OOC reports the streaming pipeline when the request ran out of
	// core (an over-budget request rerouted to the tile stream).
	OOC *OOCInfo `json:"ooc,omitempty"`
}

// OOCInfo is the out-of-core section of a RunResponse: what the
// bounded-memory tile stream did instead of an in-core execution.
type OOCInfo struct {
	// Budget is the tile-residency byte budget the stream ran under;
	// PeakBytes the leased high-water mark (always <= Budget).
	Budget    int64 `json:"budget"`
	PeakBytes int64 `json:"peakBytes"`
	// Tiles/BytesRead are the tile stream volume; Evictions the leases
	// released after compute.
	Tiles     int64 `json:"tiles"`
	BytesRead int64 `json:"bytesRead"`
	Evictions int64 `json:"evictions"`
	// PrefetchHits/PrefetchStalls report how well the double-buffered
	// read pipeline overlapped with compute.
	PrefetchHits   int64 `json:"prefetchHits"`
	PrefetchStalls int64 `json:"prefetchStalls"`
	// FileBytes is the size of the spooled v3 tile file the stream read.
	FileBytes int64 `json:"fileBytes"`
}

// DistInfo is the distributed-path section of a RunResponse: the
// measured communicator traffic of this call plus the alpha-beta model
// of it, and the engine's fault-tolerance state.
type DistInfo struct {
	// Ranks is the requested worker count; LiveWorkers how many survive
	// after any re-shards (engines are cached per dataset/format/ranks,
	// so earlier failures persist).
	Ranks       int `json:"ranks"`
	LiveWorkers int `json:"liveWorkers"`
	// CommBytes/CommMessages are the traffic the communicator measured
	// for this call; ModeledCommSec is the alpha-beta time for it.
	CommBytes      int64   `json:"commBytes"`
	CommMessages   int64   `json:"commMessages"`
	ModeledCommSec float64 `json:"modeledCommSec"`
	// Reshards counts re-shard retries this call spent on worker
	// failures.
	Reshards int64 `json:"reshards"`
}

// ErrorBody is the typed error payload of every non-2xx response.
type ErrorBody struct {
	// Type names the failure class: panic, deadline, non-finite,
	// breaker-open, exhausted, unsupported, not-found, bad-request,
	// quota, overload, method.
	Type    string `json:"type"`
	Message string `json:"message"`
	Kernel  string `json:"kernel,omitempty"`
	Format  string `json:"format,omitempty"`
	Backend string `json:"backend,omitempty"`
}

type errorResponse struct {
	Error ErrorBody `json:"error"`
}

// statusOf maps an execution error onto (HTTP status, taxonomy type)
// via the resilience sentinels. Specific classes are checked before
// ErrExhausted so an exhausted ladder reports its root cause.
func statusOf(err error) (int, string) {
	switch {
	// Cancellation first: a cancelled cooperative kernel surfaces as
	// ErrDeadline wrapping a Canceled cause, and the client-walked-away
	// classification must win over the deadline one.
	case resilience.IsCancelled(err):
		return statusClientClosedRequest, "cancelled"
	case errors.Is(err, resilience.ErrUnsupported):
		return http.StatusNotFound, "unsupported"
	case errors.Is(err, resilience.ErrBreakerOpen):
		return http.StatusServiceUnavailable, "breaker-open"
	case errors.Is(err, resilience.ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline"
	case errors.Is(err, resilience.ErrNonFinite):
		return http.StatusUnprocessableEntity, "non-finite"
	case errors.Is(err, resilience.ErrPanic):
		return http.StatusInternalServerError, "panic"
	case errors.Is(err, resilience.ErrExhausted):
		return http.StatusBadGateway, "exhausted"
	}
	return http.StatusInternalServerError, "internal"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hung up; nothing to do
}

func writeError(w http.ResponseWriter, status int, body ErrorBody) {
	ctrErrors.Inc()
	writeJSON(w, status, errorResponse{Error: body})
}

// writeExecError renders an execution error with the taxonomy mapping
// and the trial label pulled from the *resilience.KernelError when one
// is present.
func writeExecError(w http.ResponseWriter, err error) {
	status, typ := statusOf(err)
	body := ErrorBody{Type: typ, Message: err.Error()}
	var ke *resilience.KernelError
	if errors.As(err, &ke) {
		body.Kernel = ke.Label.Kernel
		body.Format = ke.Label.Format
		body.Backend = ke.Label.Backend
	}
	writeError(w, status, body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.gov.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"uptimeSec": time.Since(s.start).Seconds(),
		"variants":  len(kernelreg.All()),
		"cached":    s.cache.len(),
	})
}

// variantInfo is one /variants row.
type variantInfo struct {
	Kernel        string `json:"kernel"`
	Format        string `json:"format"`
	Backend       string `json:"backend"`
	ModeDependent bool   `json:"modeDependent"`
	NeedsFactors  bool   `json:"needsFactors"`
	StrategyAware bool   `json:"strategyAware"`
	SerialRef     bool   `json:"serialRef"`
	// Generated marks a variant instantiated by the generic
	// level-iterator kernels from the format's declaration.
	Generated bool `json:"generated"`
	// Levels is the format's declared level signature (empty for
	// formats without a level view).
	Levels string `json:"levels,omitempty"`
}

func (s *Server) handleVariants(w http.ResponseWriter, r *http.Request) {
	all := kernelreg.All()
	out := make([]variantInfo, 0, len(all))
	for _, v := range all {
		out = append(out, variantInfo{
			Kernel:        v.Kernel.String(),
			Format:        v.Format.String(),
			Backend:       v.Backend.String(),
			ModeDependent: v.Caps.ModeDependent,
			NeedsFactors:  v.Caps.NeedsFactors,
			StrategyAware: v.Caps.StrategyAware,
			SerialRef:     v.Caps.SerialRef,
			Generated:     v.Generated,
			Levels:        v.Levels,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, ErrorBody{Type: "method", Message: "POST /run"})
		return
	}
	ctrRequests.Inc()
	start := time.Now()
	defer func() { ctrLatencyUsec.Add(time.Since(start).Microseconds()) }()

	// Decode before any admission decision: the cost model needs the
	// parsed request, and a malformed body should cost nothing.
	var req RunRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorBody{Type: "bad-request", Message: err.Error()})
		return
	}

	// The request context carries the client's disconnect; an optional
	// per-request deadline header tightens it further.
	ctx := r.Context()
	if h := strings.TrimSpace(r.Header.Get(deadlineHeader)); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			writeError(w, http.StatusBadRequest, ErrorBody{
				Type: "bad-request", Message: fmt.Sprintf("invalid %s %q: want a positive Go duration", deadlineHeader, h)})
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	if s.gov.Draining() {
		w.Header().Set("Retry-After", retryAfterSeconds(s.gov.DrainGrace()))
		writeError(w, http.StatusServiceUnavailable, ErrorBody{
			Type: "draining", Message: "daemon is draining; not admitting new work"})
		return
	}

	client := clientID(r)
	if ok, retry := s.quotas.admit(client); !ok {
		// Retry-After tracks the client's actual window remainder: the
		// quota recovers when the window rolls over, not in a fixed
		// second (a lifetime budget never recovers; 1s is the floor the
		// header grammar allows us to express either way).
		w.Header().Set("Retry-After", retryAfterSeconds(retry))
		writeError(w, http.StatusTooManyRequests, ErrorBody{
			Type: "quota", Message: "client quota exhausted"})
		return
	}

	cost, err := s.requestCost(req)
	if err != nil {
		var br *badRequestError
		if errors.As(err, &br) {
			writeError(w, br.status, br.body)
			return
		}
		writeExecError(w, err)
		return
	}
	lease, err := s.gov.Admit(ctx, cost)
	if err != nil {
		switch {
		case errors.Is(err, govern.ErrDraining):
			w.Header().Set("Retry-After", retryAfterSeconds(s.gov.DrainGrace()))
			writeError(w, http.StatusServiceUnavailable, ErrorBody{
				Type: "draining", Message: "daemon is draining; not admitting new work"})
		case errors.Is(err, govern.ErrOverBudget):
			// A dataset too large to run in core may still be streamable:
			// the out-of-core path holds only a budgeted tile window plus
			// dense operands, so it is re-admitted at that (much smaller)
			// cost and runs instead of 413ing.
			if s.tryStreamOverBudget(ctx, w, req, client) {
				return
			}
			// No Retry-After: a request larger than the whole budget can
			// never be admitted, so there is no useful time to suggest.
			writeError(w, http.StatusRequestEntityTooLarge, ErrorBody{
				Type: "over-budget",
				Message: fmt.Sprintf("request working set ~%d bytes exceeds the daemon budget %d",
					cost, s.gov.Budget())})
		case errors.Is(err, govern.ErrOverloaded):
			w.Header().Set("Retry-After", retryAfterSeconds(s.overloadRetryAfter()))
			writeError(w, http.StatusServiceUnavailable, ErrorBody{
				Type: "shed",
				Message: fmt.Sprintf("daemon memory budget exhausted (~%d bytes in flight); request shed",
					s.gov.BytesInflight())})
		default:
			// The client's own context ended while waiting at the gate.
			s.finishCancelled(w, client)
		}
		return
	}
	defer lease.Release()

	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		ctrOverloadRejects.Inc()
		// A slot frees after roughly one mean request duration; derive
		// the hint from the measured in-flight state instead of a
		// hardcoded constant.
		w.Header().Set("Retry-After", retryAfterSeconds(s.overloadRetryAfter()))
		writeError(w, http.StatusServiceUnavailable, ErrorBody{
			Type: "overload", Message: "daemon at max in-flight requests"})
		return
	}

	resp, err := s.Run(ctx, req)
	if err != nil {
		// A disconnect observed anywhere down the stack lands here; the
		// 499 is written for the log's benefit (the client is gone) and
		// the quota charge is refunded — abandoned work must not count.
		if r.Context().Err() != nil || resilience.IsCancelled(err) {
			s.finishCancelled(w, client)
			return
		}
		if errors.Is(err, govern.ErrDraining) {
			// A joiner detached from a shared flight because the daemon
			// started draining mid-wait.
			w.Header().Set("Retry-After", retryAfterSeconds(s.gov.DrainGrace()))
			writeError(w, http.StatusServiceUnavailable, ErrorBody{
				Type: "draining", Message: "daemon is draining; not admitting new work"})
			return
		}
		var br *badRequestError
		if errors.As(err, &br) {
			writeError(w, br.status, br.body)
			return
		}
		writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// finishCancelled closes out a request whose client walked away: the
// cancellation is counted and traced, the quota charge refunded, and a
// 499 (nginx's client-closed-request) written for whoever is still
// listening.
func (s *Server) finishCancelled(w http.ResponseWriter, client string) {
	ctrCancelled.Inc()
	s.quotas.refund(client)
	obs.Emit("govern.cancelled", client, obs.PhaseTrial, -1)
	writeError(w, statusClientClosedRequest, ErrorBody{
		Type: "cancelled", Message: "request cancelled by client"})
}

// retryAfterSeconds renders a duration as a Retry-After header value:
// integer seconds, rounded up, floored at 1 (the smallest useful hint
// the delta-seconds grammar can express), capped at an hour so a
// misconfigured window cannot tell clients to go away for a day.
func retryAfterSeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 3600 {
		secs = 3600
	}
	return strconv.FormatInt(secs, 10)
}

// overloadRetryAfter estimates when an in-flight slot frees: the mean
// request latency measured so far (total request-microseconds over
// total requests). With no history it falls back to zero, which
// retryAfterSeconds floors to 1s.
func (s *Server) overloadRetryAfter() time.Duration {
	reqs := ctrRequests.Value()
	if reqs <= 0 {
		return 0
	}
	return time.Duration(ctrLatencyUsec.Value()/reqs) * time.Microsecond
}

// badRequestError carries a pre-rendered request-level failure (parse
// or lookup, not execution).
type badRequestError struct {
	status int
	body   ErrorBody
}

func (e *badRequestError) Error() string { return e.body.Message }

// Run resolves, caches, batches, and executes one request. It is the
// transport-independent core of POST /run. ctx carries the caller's
// cancellation (client disconnect, per-request deadline) all the way
// into the trial; nil means no cancellation.
func (s *Server) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	k, f, b, err := parseVariant(req)
	if err != nil {
		return nil, err
	}
	if req.Ranks < 0 {
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type: "bad-request", Message: fmt.Sprintf("ranks must be >= 0, got %d", req.Ranks)}}
	}
	if req.Ranks > 0 {
		return s.runDist(ctx, req, k, f)
	}
	var v *kernelreg.Variant
	if strings.TrimSpace(req.Backend) == "" {
		v, err = kernelreg.HostVariant(k, f)
	} else {
		v, err = kernelreg.Lookup(k, f, b)
	}
	if err != nil {
		return nil, err
	}
	wbe, wbHit, err := s.workbench(ctx, req.Dataset)
	if err != nil {
		return nil, err
	}
	mode := req.Mode
	if !v.Caps.ModeDependent {
		mode = 0 // Tew/Ts compute no per-mode quantity
	} else if mode < 0 || mode >= wbe.wb.X.Order() {
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type:    "bad-request",
			Message: fmt.Sprintf("mode %d out of range for order-%d tensor %s", mode, wbe.wb.X.Order(), wbe.name),
		}}
	}
	ie, instHit, err := s.instance(ctx, wbe, v, mode)
	if err != nil {
		return nil, err
	}
	resp, batched, err := s.execute(ctx, ie, runOpts{verify: req.Verify, fallback: req.Fallback == nil || *req.Fallback})
	if err != nil {
		return nil, err
	}
	resp.Dataset = wbe.name
	resp.CacheHit = instHit
	resp.WorkbenchHit = wbHit
	resp.Batched = batched
	return resp, nil
}

// parseVariant resolves the request's kernel/format/backend strings.
func parseVariant(req RunRequest) (roofline.Kernel, roofline.Format, kernelreg.Backend, error) {
	bad := func(what, got string) error {
		return &badRequestError{http.StatusBadRequest, ErrorBody{
			Type: "bad-request", Message: fmt.Sprintf("unknown %s %q", what, got)}}
	}
	var (
		k     roofline.Kernel
		f     roofline.Format
		b     kernelreg.Backend
		found bool
	)
	for _, kk := range roofline.Kernels {
		if strings.EqualFold(kk.String(), req.Kernel) {
			k, found = kk, true
			break
		}
	}
	if !found {
		return 0, 0, 0, bad("kernel", req.Kernel)
	}
	found = false
	for _, ff := range roofline.Formats {
		if strings.EqualFold(ff.String(), req.Format) {
			f, found = ff, true
			break
		}
	}
	if !found {
		return 0, 0, 0, bad("format", req.Format)
	}
	switch strings.ToLower(strings.TrimSpace(req.Backend)) {
	case "", "omp":
		b = kernelreg.OMP
	case "gpu":
		b = kernelreg.GPU
	case "multigpu":
		b = kernelreg.MultiGPU
	case "ooc":
		b = kernelreg.OOC
	default:
		return 0, 0, 0, bad("backend", req.Backend)
	}
	return k, f, b, nil
}

// wbEntry is one cached dataset: the materialized tensor wrapped in a
// goroutine-safe Workbench.
type wbEntry struct {
	name string // canonical dataset name (r2 and nell2 share one entry)
	wb   *kernelreg.Workbench
}

// workbench returns the cached Workbench for a dataset, materializing
// the tensor on first use (singleflight: a thundering herd generates
// it once).
func (s *Server) workbench(ctx context.Context, ds string) (*wbEntry, bool, error) {
	e, err := dataset.ByID(strings.TrimSpace(ds))
	if err != nil {
		return nil, false, &badRequestError{http.StatusNotFound, ErrorBody{
			Type: "not-found", Message: err.Error()}}
	}
	val, hit, err := s.cache.getOrCreate(ctx, wbKey(e.Name), func() (any, error) {
		sp := obs.Begin("daemon.materialize", e.Name, obs.PhasePrepare, -1)
		defer sp.End()
		x, err := dataset.Materialize(e, s.cfg.NNZ, s.cfg.Seed)
		if err != nil {
			return nil, err
		}
		return &wbEntry{name: e.Name, wb: kernelreg.NewWorkbench(x, s.cfg.Bench)}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return val.(*wbEntry), hit, nil
}

// instEntry is one cached prepared Instance plus its execution state.
// An Instance has a single output buffer, so runs serialize on mu;
// identical concurrent requests batch through flights instead of
// queuing on the lock.
type instEntry struct {
	v    *kernelreg.Variant
	wbe  *wbEntry
	mode int
	inst *kernelreg.Instance

	mu sync.Mutex // serializes executions of this instance

	fmu     sync.Mutex
	flights map[runOpts]*flight
}

// instance returns the cached prepared Instance for (dataset, variant,
// mode), preparing it on first use.
func (s *Server) instance(ctx context.Context, wbe *wbEntry, v *kernelreg.Variant, mode int) (*instEntry, bool, error) {
	val, hit, err := s.cache.getOrCreate(ctx, instKey(wbe.name, v, mode), func() (any, error) {
		inst, err := v.Prepare(wbe.wb, mode)
		if err != nil {
			return nil, err
		}
		return &instEntry{v: v, wbe: wbe, mode: mode, inst: inst, flights: make(map[runOpts]*flight)}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return val.(*instEntry), hit, nil
}

// runOpts is the batching key: only requests that would produce the
// same response body may share one execution.
type runOpts struct {
	verify   bool
	fallback bool
}

// errAbandoned is the cancel cause a flight's trial context carries
// when every request waiting on it has disconnected: nobody is left to
// read the result, so the work stops.
var errAbandoned = errors.New("serve: every waiter for this trial disconnected")

// flight is one in-progress execution identical requests wait on. The
// trial runs under the flight's own detached context, reference-counted
// by the requests waiting on it: each joiner registers a leave on its
// request context, and the last waiter to walk away cancels the trial —
// work nobody is waiting for stops within a chunk boundary instead of
// running to completion.
type flight struct {
	done chan struct{}
	resp *RunResponse
	err  error

	// ctx is the trial's context: detached from any single request (a
	// batched trial must survive one waiter's disconnect) and cancelled
	// with errAbandoned when waiters reaches zero.
	ctx    context.Context
	cancel context.CancelCauseFunc

	mu      sync.Mutex
	waiters int
}

func (f *flight) join() {
	f.mu.Lock()
	f.waiters++
	f.mu.Unlock()
}

func (f *flight) leave() {
	f.mu.Lock()
	f.waiters--
	last := f.waiters == 0
	f.mu.Unlock()
	if last {
		f.cancel(errAbandoned)
	}
}

// execute runs the instance, coalescing identical concurrent requests
// onto one trial: the first request becomes the leader and runs; the
// rest wait on its flight and share the result (and its measured
// time — the semantics of a benchmark batch, one execution observed by
// all). Every participant detaches when its own ctx ends (or the
// daemon starts draining), and the last one out cancels the trial.
func (s *Server) execute(ctx context.Context, ie *instEntry, opts runOpts) (*RunResponse, bool, error) {
	ie.fmu.Lock()
	if f := ie.flights[opts]; f != nil {
		// join under fmu: the waiter count must be visible before the
		// leader can observe an abandoned flight.
		f.join()
		ie.fmu.Unlock()
		stop := context.AfterFunc(ctx, f.leave)
		detach := func() {
			if stop() {
				f.leave()
			}
		}
		select {
		case <-f.done:
			detach()
			ctrBatchJoined.Inc()
			if f.err != nil {
				return nil, true, f.err
			}
			// Copy so the caller's response mutations (cache-hit flags)
			// don't race other waiters'.
			resp := *f.resp
			return &resp, true, nil
		case <-s.gov.DrainChan():
			// Drain: joiners detach immediately (the leader finishes its
			// trial under the drain grace; waiters would only extend it).
			detach()
			return nil, true, fmt.Errorf("serve: joiner detached: %w", govern.ErrDraining)
		case <-ctx.Done():
			detach()
			return nil, true, ctxRequestErr(ctx)
		}
	}
	f := &flight{done: make(chan struct{})}
	f.ctx, f.cancel = context.WithCancelCause(context.Background())
	f.join()
	ie.flights[opts] = f
	ie.fmu.Unlock()
	stop := context.AfterFunc(ctx, f.leave)

	ctrBatchRuns.Inc()
	f.resp, f.err = s.runTrial(f.ctx, ie, opts)
	ie.fmu.Lock()
	delete(ie.flights, opts)
	ie.fmu.Unlock()
	close(f.done)
	if stop() {
		f.leave()
	}
	f.cancel(nil) // release the AfterFunc resources; no-op if already cancelled
	if f.err != nil {
		// A trial cancelled because this waiter's own context ended is
		// re-classified through that context: a per-request deadline
		// renders 504, only a true disconnect renders 499 (the flight's
		// cancel cause cannot tell the two apart).
		if resilience.IsCancelled(f.err) && ctx.Err() != nil {
			return nil, false, ctxRequestErr(ctx)
		}
		return nil, false, f.err
	}
	resp := *f.resp
	return &resp, false, nil
}

// ctxRequestErr classifies a request context that ended while its
// owner waited on a shared flight, mapping onto the resilience taxonomy
// so statusOf renders 499 for a disconnect and 504 for a deadline.
func ctxRequestErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.Canceled) {
		return fmt.Errorf("serve: request cancelled: %w (%w)", resilience.ErrCancelled, context.Cause(ctx))
	}
	return fmt.Errorf("serve: request deadline: %w", resilience.ErrDeadline)
}

// runTrial executes one guarded trial of the prepared instance down
// the degradation ladder and assembles the response. ctx is the
// flight's trial context: cancelled when every waiter disconnects.
func (s *Server) runTrial(ctx context.Context, ie *instEntry, opts runOpts) (*RunResponse, error) {
	ie.mu.Lock()
	defer ie.mu.Unlock()
	label := ie.v.Label()
	t := resilience.Trial{
		Label:   label,
		Timeout: s.cfg.Timeout,
		Retries: 1,
		Backoff: time.Millisecond,
		Rungs:   []resilience.Rung{{Backend: label.Backend, Exec: ie.inst.Run}},
		Check:   ie.inst.Check,
	}
	if opts.fallback && ie.inst.Serial != nil {
		t.Rungs = append(t.Rungs, resilience.Rung{Backend: "serial", Exec: ie.inst.Serial})
	}
	sp := obs.Begin("daemon.trial", label.String(), obs.PhaseTrial, -1)
	start := time.Now()
	rep := s.runner.Do(ctx, t)
	elapsed := time.Since(start).Seconds()
	sp.Attr("outcome", rep.String())
	sp.End()
	if rep.Settled != nil {
		// The shared instance's output buffer must be quiescent before
		// the next request (or the verify below) touches it.
		<-rep.Settled
	}
	if rep.Err != nil {
		return nil, rep.Err
	}
	resp := &RunResponse{
		Variant:      ie.v.String(),
		Mode:         ie.mode,
		Outcome:      rep.String(),
		Backend:      rep.Backend,
		FellFrom:     rep.FellFrom,
		Attempts:     rep.Attempts,
		Flops:        ie.inst.Flops,
		ElapsedSec:   elapsed,
		Plan:         ie.inst.Plan,
		BreakersOpen: s.openBreakers(),
	}
	if elapsed > 0 {
		resp.GFLOPS = float64(ie.inst.Flops) / elapsed / 1e9
	}
	if ie.inst.Strategy != nil && rep.Backend == label.Backend {
		resp.Strategy = ie.inst.Strategy()
	}
	if opts.verify {
		ref, err := ie.wbe.wb.Reference(ctx, ie.v.Kernel, ie.mode)
		if err != nil {
			return nil, err
		}
		dev := kernelreg.Compare(ie.inst.Output(), ref)
		resp.Deviation = &dev
	}
	return resp, nil
}

// Governor exposes the server's resource governor (pastad reads drain
// state and budget for its shutdown sequence and logs).
func (s *Server) Governor() *govern.Governor { return s.gov }

// BeginDrain flips the daemon into draining mode: new requests are
// rejected 503 with a Retry-After hint, joiners waiting on shared
// flights detach, and in-flight leaders run to completion. Idempotent.
func (s *Server) BeginDrain() { s.gov.BeginDrain() }

// Drain performs a full graceful drain: stop admitting, then wait for
// every admitted lease to release, bounded by ctx (callers typically
// pass a context carrying the drain grace). Returns nil when the
// daemon is idle, or the ctx error annotated with what is still held.
func (s *Server) Drain(ctx context.Context) error {
	s.gov.BeginDrain()
	return s.gov.AwaitIdle(ctx)
}

// openBreakers lists the backends whose circuit breaker is open.
func (s *Server) openBreakers() []string {
	var out []string
	for _, b := range []string{"omp", "gpu", "multigpu", "serial"} {
		if s.runner.BreakerOpen(b) {
			out = append(out, b)
		}
	}
	return out
}
