package serve

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"

	"repro/internal/obs"
)

// Cache traffic counters live in the shared obs registry so /metrics
// exports them next to the kernel-runtime counters.
var (
	ctrCacheHits      = obs.GetCounter("daemon.cache.hits")
	ctrCacheMisses    = obs.GetCounter("daemon.cache.misses")
	ctrCacheEvictions = obs.GetCounter("daemon.cache.evictions")
)

// cache is a sharded LRU with singleflight fills: concurrent requests
// for a missing key block on one build instead of materializing the
// same tensor (or preparing the same Instance) N times. Shards keep
// the lock hot-path short — a hit touches one shard mutex for a map
// lookup plus a list move.
type cache struct {
	shards []*cacheShard
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *cacheEntry
	m   map[string]*list.Element
}

// cacheEntry is one keyed value. ready closes when the build finishes;
// waiters then read val/err without further synchronization (both are
// written exactly once, before the close).
type cacheEntry struct {
	key   string
	ready chan struct{}
	val   any
	err   error
}

func newCache(shards, shardCap int) *cache {
	if shards < 1 {
		shards = 1
	}
	if shardCap < 1 {
		shardCap = 1
	}
	c := &cache{shards: make([]*cacheShard, shards)}
	for i := range c.shards {
		c.shards[i] = &cacheShard{
			cap: shardCap,
			ll:  list.New(),
			m:   make(map[string]*list.Element),
		}
	}
	return c
}

func (c *cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// getOrCreate returns the cached value under key, building it exactly
// once on a miss while concurrent callers for the same key wait for
// that one build. hit reports whether the value (or the in-flight
// build joined) already existed. A failed build is removed so a later
// request retries instead of caching the error forever.
//
// A waiter whose ctx ends before the build finishes returns the ctx
// error without touching the hit counter (it consumed nothing); the
// build itself keeps running — the leader, and any patient waiters,
// still get the value, so an impatient client cannot poison the cache.
func (c *cache) getOrCreate(ctx context.Context, key string, build func() (any, error)) (val any, hit bool, err error) {
	sh := c.shard(key)
	sh.mu.Lock()
	if el, ok := sh.m[key]; ok {
		sh.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		sh.mu.Unlock()
		if ctx != nil {
			select {
			case <-e.ready:
			case <-ctx.Done():
				return nil, false, context.Cause(ctx)
			}
		} else {
			<-e.ready
		}
		if e.err != nil {
			return nil, false, e.err
		}
		ctrCacheHits.Inc()
		return e.val, true, nil
	}
	ctrCacheMisses.Inc()
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	el := sh.ll.PushFront(e)
	sh.m[key] = el
	for sh.ll.Len() > sh.cap {
		// Evict the coldest entry. An evicted in-flight build still
		// completes for its waiters (they hold the entry pointer); it
		// just stops being findable.
		back := sh.ll.Back()
		sh.ll.Remove(back)
		delete(sh.m, back.Value.(*cacheEntry).key)
		ctrCacheEvictions.Inc()
	}
	sh.mu.Unlock()

	e.val, e.err = build()
	if e.err != nil {
		sh.mu.Lock()
		if cur, ok := sh.m[key]; ok && cur == el {
			sh.ll.Remove(el)
			delete(sh.m, key)
		}
		sh.mu.Unlock()
	}
	close(e.ready)
	return e.val, false, e.err
}

// peek reports whether key holds a completed, successful entry, without
// counters or LRU movement — the admission cost model asks "is this
// already resident?" and a peek must not perturb the hit/miss
// accounting (the cache-conservation invariant counts only getOrCreate
// traffic). An in-flight build reads as absent: until it completes its
// memory is still being allocated, so charging the full cost is the
// conservative answer.
func (c *cache) peek(key string) (any, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	el, ok := sh.m[key]
	if !ok {
		sh.mu.Unlock()
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	sh.mu.Unlock()
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, false
		}
		return e.val, true
	default:
		return nil, false
	}
}

// len reports the live entry count across shards (a /metrics gauge).
func (c *cache) len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
