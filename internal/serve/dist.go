package serve

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/internal/dist"
	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/roofline"
)

// maxDistRanks bounds the simulated worker count one request may ask
// for: each rank is a goroutine plus a shard copy of the tensor, so an
// unbounded value would let one request allocate arbitrarily.
const maxDistRanks = 64

// distEntry is one cached distributed engine, keyed by
// (dataset, format, ranks). The engine serializes its own runs and
// keeps its fault-tolerance state (removed workers stay removed), so
// repeated requests observe a consistent simulated cluster.
type distEntry struct {
	eng *dist.Engine
	wbe *wbEntry
}

// runDist executes one request on the distributed layer: the tensor
// sharded mode-wise across req.Ranks simulated workers, Mttkrp combined
// by ring allreduce, Ttv gathered at the root, worker failures
// re-sharded around by the engine. The response carries the usual trial
// fields plus a DistInfo section with measured and alpha-beta-modeled
// communication.
func (s *Server) runDist(ctx context.Context, req RunRequest, k roofline.Kernel, f roofline.Format) (*RunResponse, error) {
	if req.Ranks > maxDistRanks {
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type: "bad-request", Message: fmt.Sprintf("ranks %d exceeds the maximum %d", req.Ranks, maxDistRanks)}}
	}
	var format dist.Format
	switch f {
	case roofline.COO:
		format = dist.FormatCOO
	case roofline.HiCOO:
		format = dist.FormatHiCOO
	default:
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type:    "bad-request",
			Message: fmt.Sprintf("distributed path supports COO and HiCOO, not %s", f),
			Kernel:  k.String(), Format: f.String(),
		}}
	}
	if k != roofline.Mttkrp && k != roofline.Ttv {
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type:    "bad-request",
			Message: fmt.Sprintf("distributed path supports Mttkrp and Ttv, not %s", k),
			Kernel:  k.String(), Format: f.String(),
		}}
	}
	wbe, wbHit, err := s.workbench(ctx, req.Dataset)
	if err != nil {
		return nil, err
	}
	if req.Mode < 0 || req.Mode >= wbe.wb.X.Order() {
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type:    "bad-request",
			Message: fmt.Sprintf("mode %d out of range for order-%d tensor %s", req.Mode, wbe.wb.X.Order(), wbe.name),
		}}
	}
	de, engHit, err := s.distEngine(ctx, wbe, format, req.Ranks)
	if err != nil {
		return nil, err
	}

	variant := fmt.Sprintf("%s/%s@dist", k, f)
	sp := obs.Begin("daemon.dist", variant, obs.PhaseTrial, -1)
	sp.Attr("ranks", fmt.Sprint(req.Ranks))
	before := de.eng.Stats()
	start := time.Now()
	var out any
	var flops int64
	var commBytes, commMsgs int64
	var modeled float64
	switch k {
	case roofline.Mttkrp:
		r := wbe.wb.R()
		res, kerr := de.eng.Mttkrp(ctx, req.Mode, wbe.wb.Mats(), r)
		if kerr == nil {
			out = res.Out
			commBytes, commMsgs, modeled = res.CommBytes, res.CommMessages, res.ModeledCommSec
			flops = int64(wbe.wb.X.Order()) * int64(wbe.wb.X.NNZ()) * int64(r)
		}
		err = kerr
	case roofline.Ttv:
		res, kerr := de.eng.Ttv(ctx, req.Mode, wbe.wb.Vec(req.Mode))
		if kerr == nil {
			out = res.Out
			commBytes, commMsgs, modeled = res.CommBytes, res.CommMessages, res.ModeledCommSec
			flops = 2 * int64(wbe.wb.X.NNZ())
		}
		err = kerr
	}
	elapsed := time.Since(start).Seconds()
	after := de.eng.Stats()
	sp.Attr("outcome", outcomeOf(err))
	sp.End()
	if err != nil {
		return nil, err
	}

	outcome := "ok"
	reshards := after.Reshards - before.Reshards
	if reshards > 0 {
		outcome = "recovered"
	}
	resp := &RunResponse{
		Dataset:      wbe.name,
		Variant:      variant,
		Mode:         req.Mode,
		Outcome:      outcome,
		Backend:      "dist",
		Attempts:     int(after.Attempts - before.Attempts),
		Flops:        flops,
		ElapsedSec:   elapsed,
		CacheHit:     engHit,
		WorkbenchHit: wbHit,
		Dist: &DistInfo{
			Ranks:          req.Ranks,
			LiveWorkers:    after.Workers,
			CommBytes:      commBytes,
			CommMessages:   commMsgs,
			ModeledCommSec: modeled,
			Reshards:       reshards,
		},
	}
	if elapsed > 0 {
		resp.GFLOPS = float64(flops) / elapsed / 1e9
	}
	if req.Verify {
		ref, err := wbe.wb.Reference(ctx, k, req.Mode)
		if err != nil {
			return nil, err
		}
		dev := kernelreg.Compare(kernelreg.CanonOf(out), ref)
		resp.Deviation = &dev
	}
	return resp, nil
}

// distEngine returns the cached engine for (dataset, format, ranks),
// building it on first use.
func (s *Server) distEngine(ctx context.Context, wbe *wbEntry, format dist.Format, ranks int) (*distEntry, bool, error) {
	val, hit, err := s.cache.getOrCreate(ctx, distKey(wbe.name, format, ranks), func() (any, error) {
		eng, err := dist.NewEngine(wbe.wb.X, dist.Options{
			Ranks:     ranks,
			Format:    format,
			BlockBits: s.cfg.Bench.BlockBits,
		})
		if err != nil {
			return nil, err
		}
		return &distEntry{eng: eng, wbe: wbe}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return val.(*distEntry), hit, nil
}

// outcomeOf renders a trial error for span attributes.
func outcomeOf(err error) string {
	if err != nil {
		return "error"
	}
	return "ok"
}
