package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/ooc"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// The daemon's out-of-core path: a request whose in-core working set
// exceeds the memory budget is rerouted here instead of 413ing, when
// its kernel can stream (Ttv and Mttkrp over a COO tile stream). The
// dataset is spooled once to a PSTB v3 tile file on disk (unlinked
// after open, so the space dies with the daemon), and the kernel runs
// via internal/ooc holding only a budgeted tile window plus its dense
// operands — the cost the reroute is admitted at.

// ctrOOCReroutes counts over-budget requests the streaming path served.
var ctrOOCReroutes = obs.GetCounter("daemon.ooc_reroutes")

func oocKey(name string) string { return "ooc:" + name }

// oocTileNNZ slices a spooled dataset into enough tiles that the
// stream actually cycles its window (at least ~16 on daemon-sized
// stand-ins), without exceeding the format default.
func oocTileNNZ(nnz int) int {
	t := nnz / 16
	if t < 1 {
		t = 1
	}
	if t > tensor.DefaultTileNNZ {
		t = tensor.DefaultTileNNZ
	}
	return t
}

// oocEntry is one cached spooled dataset: the open tile reader over the
// unlinked v3 file, plus lazily built dense operands seeded exactly
// like the Workbench ones (so an ooc response is comparable with an
// in-core run of the same request on a bigger daemon).
type oocEntry struct {
	name      string
	tr        *tensor.TileReader
	fileBytes int64

	mu   sync.Mutex
	mats []*tensor.Matrix
	vecs map[int]tensor.Vector
	r    int
}

func (e *oocEntry) factorMats() []*tensor.Matrix {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mats == nil {
		rng := rand.New(rand.NewSource(777))
		mats := make([]*tensor.Matrix, e.tr.Order())
		for n := range mats {
			mats[n] = tensor.NewMatrix(int(e.tr.Dims[n]), e.r)
			mats[n].Randomize(rng)
		}
		e.mats = mats
	}
	return e.mats
}

func (e *oocEntry) vec(mode int) tensor.Vector {
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.vecs[mode]; ok {
		return v
	}
	v := tensor.RandomVector(int(e.tr.Dims[mode]), rand.New(rand.NewSource(int64(mode))))
	e.vecs[mode] = v
	return v
}

// streamableReq reports whether the request can run out of core: a
// streaming kernel over the COO tile layout, no distributed fan-out,
// and a backend choice the reroute honors (unset, the host default, or
// ooc itself — an explicit gpu/multigpu ask is not silently moved).
func streamableReq(req RunRequest) bool {
	if req.Ranks != 0 {
		return false
	}
	switch strings.ToLower(strings.TrimSpace(req.Backend)) {
	case "", "omp", "ooc":
	default:
		return false
	}
	if !strings.EqualFold(req.Format, roofline.COO.String()) {
		return false
	}
	return strings.EqualFold(req.Kernel, roofline.Ttv.String()) ||
		strings.EqualFold(req.Kernel, roofline.Mttkrp.String())
}

// oocStreamBudget is the tile-residency budget rerouted streams run
// under: a quarter of the daemon budget, capped at the ooc default so
// one stream cannot monopolize admission headroom.
func (s *Server) oocStreamBudget() int64 {
	b := s.gov.Budget() / 4
	if b > ooc.DefaultBudget {
		b = ooc.DefaultBudget
	}
	if b < 1<<16 {
		b = 1 << 16
	}
	return b
}

// oocCost predicts the admitted working set of a rerouted stream: the
// tile-window budget plus the dense operands and output. Ttv's sparse
// output is charged at its worst case (every non-zero its own fiber) —
// honest, so a Ttv whose output alone cannot fit is still rejected.
func (s *Server) oocCost(req RunRequest) (int64, error) {
	k, _, _, err := parseVariant(req)
	if err != nil {
		return 0, err
	}
	e, err := dataset.ByID(strings.TrimSpace(req.Dataset))
	if err != nil {
		return 0, &badRequestError{http.StatusNotFound, ErrorBody{
			Type: "not-found", Message: err.Error()}}
	}
	dims := e.ScaledDims(s.cfg.NNZ)
	r := int64(s.cfg.Bench.R)
	if r < 1 {
		r = int64(kernelreg.DefaultConfig().R)
	}
	cost := s.oocStreamBudget()
	var sumDims, maxDim int64
	for _, d := range dims {
		sumDims += int64(d)
		if int64(d) > maxDim {
			maxDim = int64(d)
		}
	}
	switch k {
	case roofline.Mttkrp:
		cost += 4 * r * (sumDims + maxDim) // factor matrices + output
	case roofline.Ttv:
		cost += 4*maxDim + 4*int64(len(dims))*int64(s.cfg.NNZ)
	}
	return cost, nil
}

// tryStreamOverBudget handles an over-budget request on the streaming
// path. It returns true when it wrote the response (success or a
// streaming-specific failure); false hands the request back to the 413.
func (s *Server) tryStreamOverBudget(ctx context.Context, w http.ResponseWriter, req RunRequest, client string) bool {
	if !streamableReq(req) {
		return false
	}
	cost, err := s.oocCost(req)
	if err != nil {
		return false
	}
	lease, err := s.gov.Admit(ctx, cost)
	if err != nil {
		// Even the streaming working set does not fit (or the gate is
		// draining/contended); the original rejection stands.
		return false
	}
	defer lease.Release()
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		ctrOverloadRejects.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(s.overloadRetryAfter()))
		writeError(w, http.StatusServiceUnavailable, ErrorBody{
			Type: "overload", Message: "daemon at max in-flight requests"})
		return true
	}
	resp, err := s.runOOC(ctx, req)
	if err != nil {
		if ctx.Err() != nil {
			s.finishCancelled(w, client)
			return true
		}
		var br *badRequestError
		if errors.As(err, &br) {
			writeError(w, br.status, br.body)
			return true
		}
		writeExecError(w, err)
		return true
	}
	ctrOOCReroutes.Inc()
	writeJSON(w, http.StatusOK, resp)
	return true
}

// runOOC executes one request on the tile stream: spool (cached,
// unlink-after-open), lease-bounded streaming kernel, stats into the
// response's OOC section.
func (s *Server) runOOC(ctx context.Context, req RunRequest) (*RunResponse, error) {
	k, _, _, err := parseVariant(req)
	if err != nil {
		return nil, err
	}
	entry, _, err := s.oocDataset(ctx, req.Dataset)
	if err != nil {
		return nil, err
	}
	tr := entry.tr
	mode := req.Mode
	if mode < 0 || mode >= tr.Order() {
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type:    "bad-request",
			Message: fmt.Sprintf("mode %d out of range for order-%d tensor %s", mode, tr.Order(), entry.name),
		}}
	}
	budget := s.oocStreamBudget()
	// A budget below the pipeline's two-lease working set would fail
	// fast; on a small daemon it is floored to what the tiles need.
	if min := 4 * tr.MaxTileBytes(); budget < min {
		budget = min
	}
	opt := ooc.Options{MemBudget: budget, Sched: s.cfg.Bench.Sched}
	opt.Sched.Ctx = ctx

	var (
		st    ooc.Stats
		flops int64
	)
	start := time.Now()
	switch k {
	case roofline.Mttkrp:
		_, st, err = ooc.Mttkrp(ctx, tr, entry.factorMats(), mode, opt)
		flops = ooc.MttkrpFlops(tr, entry.r)
	case roofline.Ttv:
		_, st, err = ooc.Ttv(ctx, tr, entry.vec(mode), mode, opt)
		flops = ooc.TtvFlops(tr)
	default:
		return nil, &badRequestError{http.StatusBadRequest, ErrorBody{
			Type: "bad-request", Message: fmt.Sprintf("kernel %s has no streaming path", k)}}
	}
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}
	resp := &RunResponse{
		Dataset:    entry.name,
		Variant:    fmt.Sprintf("%s/COO@ooc", k),
		Mode:       mode,
		Outcome:    "ok",
		Backend:    "ooc",
		Attempts:   1,
		Flops:      flops,
		ElapsedSec: elapsed.Seconds(),
		OOC: &OOCInfo{
			Budget:         st.Budget,
			PeakBytes:      st.PeakBytes,
			Tiles:          st.Tiles,
			BytesRead:      st.BytesRead,
			Evictions:      st.Evictions,
			PrefetchHits:   st.PrefetchHits,
			PrefetchStalls: st.PrefetchStalls,
			FileBytes:      entry.fileBytes,
		},
	}
	if sec := elapsed.Seconds(); sec > 0 {
		resp.GFLOPS = float64(flops) / sec / 1e9
	}
	return resp, nil
}

// oocDataset returns the cached spooled tile file for a dataset,
// materializing and spooling it on first use. The temp file is
// unlinked as soon as the reader holds it open: its blocks are
// reclaimed when the reader (or the process) goes away, and no
// directory entry can leak.
func (s *Server) oocDataset(ctx context.Context, ds string) (*oocEntry, bool, error) {
	e, err := dataset.ByID(strings.TrimSpace(ds))
	if err != nil {
		return nil, false, &badRequestError{http.StatusNotFound, ErrorBody{
			Type: "not-found", Message: err.Error()}}
	}
	val, hit, err := s.cache.getOrCreate(ctx, oocKey(e.Name), func() (any, error) {
		sp := obs.Begin("daemon.ooc_spool", e.Name, obs.PhasePrepare, -1)
		defer sp.End()
		// Materialization is transient: the COO exists only while it is
		// being tiled out to disk, then only the reader's window remains.
		x, err := dataset.Materialize(e, s.cfg.NNZ, s.cfg.Seed)
		if err != nil {
			return nil, err
		}
		f, err := os.CreateTemp("", "pastad-ooc-*.bten")
		if err != nil {
			return nil, err
		}
		if err := tensor.WriteBinaryTiled(f, x, oocTileNNZ(x.NNZ())); err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, err
		}
		tr, err := tensor.NewTileReader(f, fi.Size())
		if err != nil {
			f.Close()
			os.Remove(f.Name())
			return nil, err
		}
		os.Remove(f.Name()) // unlink-after-open
		r := s.cfg.Bench.R
		if r < 1 {
			r = kernelreg.DefaultConfig().R
		}
		return &oocEntry{
			name: e.Name, tr: tr, fileBytes: fi.Size(),
			vecs: make(map[int]tensor.Vector), r: r,
		}, nil
	})
	if err != nil {
		return nil, false, err
	}
	return val.(*oocEntry), hit, nil
}
