package serve

import (
	"net/http"
	"testing"

	"repro/internal/obs"
)

// TestOverBudgetStreamsInsteadOf413: a streamable request whose in-core
// working set exceeds the daemon budget is rerouted to the out-of-core
// tile stream and succeeds, with the streaming stats in the response
// and the peak leased bytes under the stream budget.
func TestOverBudgetStreamsInsteadOf413(t *testing.T) {
	// Size the budget one byte under the in-core cost so the admission
	// gate rejects it over-budget, while the (much smaller) streaming
	// working set still fits.
	incore, err := New(Config{NNZ: 1500}).requestCost(RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO"})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestDaemon(t, Config{NNZ: 1500, MemBudget: incore - 1})
	reroutes := obs.GetCounter("daemon.ooc_reroutes")
	before := reroutes.Value()

	status, body := postRun(t, ts.URL,
		RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Mode: 1}, "streamer")
	if status != http.StatusOK {
		t.Fatalf("over-budget streamable request: HTTP %d, want 200: %s", status, body)
	}
	resp := decodeRun(t, body)
	if resp.Backend != "ooc" || resp.Variant != "Mttkrp/COO@ooc" {
		t.Fatalf("rerouted onto %q/%q, want the ooc variant: %s", resp.Backend, resp.Variant, body)
	}
	if resp.OOC == nil {
		t.Fatalf("response lacks the ooc section: %s", body)
	}
	st := resp.OOC
	if st.Tiles < 8 || st.Evictions != st.Tiles || st.BytesRead <= 0 {
		t.Fatalf("implausible stream stats %+v", st)
	}
	if st.PeakBytes <= 0 || st.PeakBytes > st.Budget {
		t.Fatalf("peak %d outside (0, budget %d]", st.PeakBytes, st.Budget)
	}
	if st.PrefetchHits+st.PrefetchStalls != st.Tiles {
		t.Fatalf("hits %d + stalls %d != tiles %d", st.PrefetchHits, st.PrefetchStalls, st.Tiles)
	}
	if st.FileBytes <= 0 {
		t.Fatalf("spooled file size %d", st.FileBytes)
	}
	if reroutes.Value() <= before {
		t.Fatal("reroute did not bump daemon.ooc_reroutes")
	}

	// Ttv's in-core footprint is smaller (no factor matrices), so it
	// needs its own just-too-small budget to take the streaming path.
	ttvIncore, err := New(Config{NNZ: 1500}).requestCost(RunRequest{Dataset: "nell2", Kernel: "Ttv", Format: "COO"})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestDaemon(t, Config{NNZ: 1500, MemBudget: ttvIncore - 1})
	status, body = postRun(t, ts2.URL,
		RunRequest{Dataset: "nell2", Kernel: "Ttv", Format: "COO"}, "streamer")
	if status != http.StatusOK {
		t.Fatalf("over-budget Ttv: HTTP %d, want 200: %s", status, body)
	}
	if resp = decodeRun(t, body); resp.Backend != "ooc" || resp.OOC == nil {
		t.Fatalf("Ttv not streamed: %s", body)
	}

	// A kernel with no streaming body keeps the honest 413.
	status, body = postRun(t, ts.URL,
		RunRequest{Dataset: "nell2", Kernel: "Ttm", Format: "COO"}, "streamer")
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget Ttm: HTTP %d, want 413: %s", status, body)
	}
	if eb := decodeError(t, body); eb.Type != "over-budget" {
		t.Fatalf("error type %q, want over-budget: %s", eb.Type, body)
	}

	// An explicit device ask is never silently moved onto the stream.
	status, body = postRun(t, ts.URL,
		RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Backend: "gpu"}, "streamer")
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget gpu request: HTTP %d, want 413: %s", status, body)
	}
}

// TestExplicitOOCBackend: backend "ooc" resolves to the registry's
// streaming variant through the normal in-core daemon path (workbench,
// instance cache, degradation ladder) — it verifies like any variant.
func TestExplicitOOCBackend(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	status, body := postRun(t, ts.URL,
		RunRequest{Dataset: "r2", Kernel: "Mttkrp", Format: "COO", Backend: "ooc", Mode: 0, Verify: true}, "c")
	if status != http.StatusOK {
		t.Fatalf("HTTP %d, want 200: %s", status, body)
	}
	resp := decodeRun(t, body)
	if resp.Variant != "Mttkrp/COO@ooc" || resp.Backend != "ooc" {
		t.Fatalf("variant %q backend %q, want the ooc variant", resp.Variant, resp.Backend)
	}
	if resp.Deviation == nil || *resp.Deviation > 2e-3 {
		t.Fatalf("deviation %v, want <= 2e-3", resp.Deviation)
	}

	status, body = postRun(t, ts.URL,
		RunRequest{Dataset: "r2", Kernel: "Ttv", Format: "COO", Backend: "ooc", Mode: 2, Verify: true}, "c")
	if status != http.StatusOK {
		t.Fatalf("Ttv HTTP %d, want 200: %s", status, body)
	}
	if resp = decodeRun(t, body); resp.Deviation == nil || *resp.Deviation > 2e-3 {
		t.Fatalf("Ttv deviation %v, want <= 2e-3", resp.Deviation)
	}

	// The streaming class covers only the reduction kernels that can
	// accumulate tile-by-tile; the rest 404 like any unregistered cell.
	status, body = postRun(t, ts.URL,
		RunRequest{Dataset: "r2", Kernel: "Tew", Format: "COO", Backend: "ooc"}, "c")
	if status != http.StatusNotFound {
		t.Fatalf("Tew@ooc HTTP %d, want 404: %s", status, body)
	}
}
