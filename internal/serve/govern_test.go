package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// postRunCtx is postRun with a caller-owned request context (the
// disconnect tests cancel it mid-flight) and optional extra headers.
func postRunCtx(ctx context.Context, base string, req RunRequest, client string, hdr map[string]string) (int, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/run", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	if client != "" {
		hr.Header.Set("X-Pasta-Client", client)
	}
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.Bytes(), nil
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestDisconnectCancelsTrialAndRefundsQuota is the satellite regression
// for the bug where handlers ignored r.Context(): a client that hangs
// up mid-trial must have its trial cancelled (govern.cancelled counts
// it) and its quota charge refunded.
func TestDisconnectCancelsTrialAndRefundsQuota(t *testing.T) {
	_, ts := newTestDaemon(t, Config{QuotaLimit: 100, AdmitWait: 20 * time.Millisecond})

	// Warm the workbench/instance so the cancel lands mid-trial, not
	// mid-materialize.
	req := RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Backend: "omp"}
	if status, body := postRun(t, ts.URL, req, "warm"); status != http.StatusOK {
		t.Fatalf("warm-up: HTTP %d: %s", status, body)
	}

	chaosCtx, chaosCancel := context.WithCancel(context.Background())
	defer chaosCancel()
	inj := resilience.NewInjector(3)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(chaosCtx, resilience.FaultStall, 0, 400*time.Millisecond)
	defer inj.Disarm()

	cancelled := obs.GetCounter("govern.cancelled")
	clientCtr := obs.GetCounter("daemon.client.waffler.requests")
	cancelledBefore := cancelled.Value()
	chargedBefore := clientCtr.Value()

	reqCtx, cancelReq := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := postRunCtx(reqCtx, ts.URL, req, "waffler", nil)
		done <- err
	}()
	// The stall hook firing means the trial is executing chunks.
	waitFor(t, 5*time.Second, "trial to start", func() bool { return inj.Injected() > 0 })
	cancelReq()
	if err := <-done; err == nil {
		t.Fatal("client cancel produced a normal response; want a transport error")
	}
	// The handler observes the disconnect asynchronously: wait for the
	// cancellation to be counted and the quota charge to come back.
	waitFor(t, 5*time.Second, "cancellation accounting", func() bool {
		return cancelled.Value() > cancelledBefore && clientCtr.Value() == chargedBefore
	})
	chaosCancel() // release the stalled worker before the next test
}

// TestDeadlineHeaderBoundsTrial: a request deadline set via the
// X-Pasta-Deadline header expires server-side → 504 deadline, and the
// charge is NOT refunded (the daemon did the work the client asked
// for; the client just asked for too little time).
func TestDeadlineHeaderBoundsTrial(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})
	req := RunRequest{Dataset: "nell2", Kernel: "Ts", Format: "COO", Backend: "omp"}
	if status, body := postRun(t, ts.URL, req, "hasty"); status != http.StatusOK {
		t.Fatalf("warm-up: HTTP %d: %s", status, body)
	}

	chaosCtx, chaosCancel := context.WithCancel(context.Background())
	defer chaosCancel()
	inj := resilience.NewInjector(5)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(chaosCtx, resilience.FaultStall, 0, 300*time.Millisecond)
	defer inj.Disarm()

	status, body, err := postRunCtx(context.Background(), ts.URL, req, "hasty",
		map[string]string{deadlineHeader: "30ms"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline header: HTTP %d, want 504: %s", status, body)
	}
	chaosCancel()

	// An unparseable deadline is a 400, before any work.
	status, body, err = postRunCtx(context.Background(), ts.URL, req, "hasty",
		map[string]string{deadlineHeader: "soon"})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusBadRequest {
		t.Fatalf("bad deadline header: HTTP %d, want 400: %s", status, body)
	}
}

// TestOverBudgetRejected413: a request whose predicted working set
// exceeds the whole budget can never run and is rejected 413 with the
// shed counter bumped.
func TestOverBudgetRejected413(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MemBudget: 4096})
	shed := obs.GetCounter("govern.shed")
	before := shed.Value()
	status, body := postRun(t, ts.URL,
		RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "HiCOO"}, "glutton")
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-budget request: HTTP %d, want 413: %s", status, body)
	}
	if eb := decodeError(t, body); eb.Type != "over-budget" {
		t.Fatalf("error type %q, want over-budget: %s", eb.Type, body)
	}
	if shed.Value() <= before {
		t.Fatal("413 did not count as a shed")
	}
}

// TestCostAwareShedding: with a budget that fits one medium request,
// concurrent distinct requests contend at the gate; the ones that
// cannot fit within AdmitWait are shed 503 while at least one runs —
// and after the dust settles the inflight gauge is back to zero.
func TestCostAwareShedding(t *testing.T) {
	// Size the budget from the model itself so the test tracks it:
	// one Mttkrp/COO fits, two do not.
	cost, err := New(Config{NNZ: 1500}).requestCost(RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO"})
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestDaemon(t, Config{NNZ: 1500, AdmitWait: 10 * time.Millisecond, MemBudget: cost + cost/2})

	// Warm the workbench so admission cost is per-request transient +
	// instance, well under budget individually.
	if status, body := postRun(t, ts2.URL, RunRequest{Dataset: "nell2", Kernel: "Ts", Format: "COO"}, "warm"); status != http.StatusOK {
		t.Fatalf("warm-up: HTTP %d: %s", status, body)
	}

	chaosCtx, chaosCancel := context.WithCancel(context.Background())
	defer chaosCancel()
	inj := resilience.NewInjector(9)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(chaosCtx, resilience.FaultStall, 0, 150*time.Millisecond)
	defer inj.Disarm()

	// Distinct kernel×format pairs: no two batch onto one flight, so
	// each needs its own admission.
	reqs := []RunRequest{
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO"},
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "HiCOO"},
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "CSF"},
		{Dataset: "nell2", Kernel: "Ttv", Format: "COO"},
		{Dataset: "nell2", Kernel: "Ttv", Format: "HiCOO"},
		{Dataset: "nell2", Kernel: "Tew", Format: "COO"},
	}
	var ok503, ok200 atomic.Int64
	var wg sync.WaitGroup
	for i, r := range reqs {
		wg.Add(1)
		go func(i int, r RunRequest) {
			defer wg.Done()
			status, body := postRun(t, ts2.URL, r, fmt.Sprintf("c%d", i))
			switch status {
			case http.StatusOK:
				ok200.Add(1)
			case http.StatusServiceUnavailable:
				ok503.Add(1)
			default:
				t.Errorf("request %d: unexpected HTTP %d: %s", i, status, body)
			}
		}(i, r)
	}
	wg.Wait()
	if ok200.Load() == 0 {
		t.Fatal("no request was admitted; the gate wedged shut")
	}
	if ok503.Load() == 0 {
		t.Fatal("no request was shed; the budget did not bite")
	}
	t.Logf("admitted %d, shed %d", ok200.Load(), ok503.Load())
}

// TestDrainDetachesJoinersAndRejectsNew: once BeginDrain is called,
// joiners waiting on a shared flight detach with 503 draining (without
// waiting out the trial), new requests are rejected 503, healthz says
// "draining", and the leader's trial runs to completion.
func TestDrainDetachesJoinersAndRejectsNew(t *testing.T) {
	s, ts := newTestDaemon(t, Config{DrainGrace: 5 * time.Second})
	req := RunRequest{Dataset: "nell2", Kernel: "Ttv", Format: "COO", Backend: "omp"}
	if status, body := postRun(t, ts.URL, req, "warm"); status != http.StatusOK {
		t.Fatalf("warm-up: HTTP %d: %s", status, body)
	}

	chaosCtx, chaosCancel := context.WithCancel(context.Background())
	defer chaosCancel()
	inj := resilience.NewInjector(13)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(chaosCtx, resilience.FaultStall, 0, 150*time.Millisecond)
	defer inj.Disarm()

	leader := make(chan int, 1)
	go func() {
		status, _ := postRun(t, ts.URL, req, "leader")
		leader <- status
	}()
	waitFor(t, 5*time.Second, "leader trial to start", func() bool { return inj.Injected() > 0 })

	joiner := make(chan int, 1)
	joinStart := time.Now()
	go func() {
		status, _ := postRun(t, ts.URL, req, "joiner")
		joiner <- status
	}()
	// Give the joiner a moment to latch onto the flight, then drain.
	time.Sleep(20 * time.Millisecond)
	s.BeginDrain()

	if status := <-joiner; status != http.StatusServiceUnavailable {
		t.Fatalf("joiner during drain: HTTP %d, want 503", status)
	}
	if waited := time.Since(joinStart); waited > 2*time.Second {
		t.Fatalf("joiner detached only after %v; drain should detach promptly", waited)
	}
	if status, body := postRun(t, ts.URL, req, "latecomer"); status != http.StatusServiceUnavailable {
		t.Fatalf("new request during drain: HTTP %d, want 503: %s", status, body)
	} else if eb := decodeError(t, body); eb.Type != "draining" {
		t.Fatalf("error type %q, want draining", eb.Type)
	}

	var hz map[string]any
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&hz) //nolint:errcheck
	resp.Body.Close()
	if hz["status"] != "draining" {
		t.Fatalf("healthz status %v, want draining", hz["status"])
	}

	// The leader was admitted before the drain began: it completes.
	if status := <-leader; status != http.StatusOK {
		t.Fatalf("leader during drain: HTTP %d, want 200", status)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain after leader finished: %v", err)
	}
	if n := s.Governor().BytesInflight(); n != 0 {
		t.Fatalf("drained daemon still holds %d in-flight bytes", n)
	}
}

// TestShutdownMidFlight drives the real pastad shutdown sequence —
// BeginDrain, http shutdown, governor drain — with a request in
// flight on a real listener: the in-flight request gets its terminal
// response and the drain completes within grace.
func TestShutdownMidFlight(t *testing.T) {
	s := New(Config{NNZ: 1500, DrainGrace: 5 * time.Second})
	hs, err := StartHTTP("127.0.0.1:0", s.Handler())
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + hs.Addr()
	req := RunRequest{Dataset: "nell2", Kernel: "Ts", Format: "COO", Backend: "omp"}
	if status, body := postRun(t, base, req, "warm"); status != http.StatusOK {
		t.Fatalf("warm-up: HTTP %d: %s", status, body)
	}

	chaosCtx, chaosCancel := context.WithCancel(context.Background())
	defer chaosCancel()
	inj := resilience.NewInjector(17)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(chaosCtx, resilience.FaultStall, 0, 200*time.Millisecond)
	defer inj.Disarm()

	inflight := make(chan int, 1)
	go func() {
		status, _ := postRun(t, base, req, "midflight")
		inflight <- status
	}()
	waitFor(t, 5*time.Second, "request to start", func() bool { return inj.Injected() > 0 })

	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("governor drain: %v", err)
	}
	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("mid-flight request during shutdown: HTTP %d, want 200", status)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestQuotaClientChurnAtCap: the per-client tracking map must stop
// growing at maxTrackedClients under a churn of distinct client ids;
// overflow clients are admitted quota-exempt, and a refund for an
// untracked client lands on the overflow counter.
func TestQuotaClientChurnAtCap(t *testing.T) {
	q := newQuotas(1, 0)
	overflowBefore := ctrClientOverflow.Value()
	for i := 0; i < maxTrackedClients+200; i++ {
		ok, _ := q.admit(fmt.Sprintf("churn-%04d", i))
		if !ok {
			t.Fatalf("first request of client %d rejected", i)
		}
	}
	q.mu.Lock()
	tracked := len(q.m)
	q.mu.Unlock()
	if tracked != maxTrackedClients {
		t.Fatalf("tracking map grew to %d, cap is %d", tracked, maxTrackedClients)
	}
	if got := ctrClientOverflow.Value() - overflowBefore; got != 200 {
		t.Fatalf("overflow counter moved by %d, want 200", got)
	}
	// A tracked client is still throttled at its limit...
	if ok, _ := q.admit("churn-0000"); ok {
		t.Fatal("tracked client admitted past its lifetime limit")
	}
	// ...an overflow client is exempt (the bucket mixes callers)...
	if ok, _ := q.admit(fmt.Sprintf("churn-%04d", maxTrackedClients+10)); !ok {
		t.Fatal("overflow client throttled; overflow is quota-exempt")
	}
	// ...and an untracked refund decrements the shared overflow cell.
	mark := ctrClientOverflow.Value()
	q.refund("never-seen")
	if got := ctrClientOverflow.Value(); got != mark-1 {
		t.Fatalf("untracked refund moved overflow to %d, want %d", got, mark-1)
	}
}

// TestRetryAfterSecondsBoundaries pins the header-rendering edges: the
// 1s floor (zero and sub-second), exact seconds, rounding up, and the
// one-hour cap.
func TestRetryAfterSecondsBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{-time.Second, "1"},
		{500 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{5 * time.Second, "5"},
		{time.Hour, "3600"},
		{time.Hour + time.Second, "3600"},
		{24 * time.Hour, "3600"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.d); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// TestOverloadSoak hammers a small-budget daemon with a mix of cheap,
// oversized, and abandoning clients, then drains. Invariants: shed and
// cancelled counters moved, cancellations never tripped a breaker,
// the governor returns to zero bytes in flight, heap stays bounded,
// and no goroutines leak.
func TestOverloadSoak(t *testing.T) {
	cost, err := New(Config{NNZ: 1500}).requestCost(RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO"})
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestDaemon(t, Config{
		NNZ: 1500, AdmitWait: 5 * time.Millisecond, DrainGrace: 10 * time.Second,
		MemBudget: cost + cost/2,
	})

	// Warm every dataset/instance the soak touches so the loop measures
	// steady state, not materialization.
	for _, r := range []RunRequest{
		{Dataset: "nell2", Kernel: "Ts", Format: "COO"},
		{Dataset: "nell2", Kernel: "Ttv", Format: "COO"},
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO"},
	} {
		if status, body := postRun(t, ts2.URL, r, "warm"); status != http.StatusOK {
			t.Fatalf("warm-up %+v: HTTP %d: %s", r, status, body)
		}
	}

	// A small per-chunk stall keeps trials in flight long enough for
	// admission to actually contend; without it leases release faster
	// than the soak can overlap them.
	chaosCtx, chaosCancel := context.WithCancel(context.Background())
	defer chaosCancel()
	inj := resilience.NewInjector(11)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(chaosCtx, resilience.FaultStall, 0, 10*time.Millisecond)
	defer inj.Disarm()

	shed := obs.GetCounter("govern.shed")
	cancelled := obs.GetCounter("govern.cancelled")
	trips := obs.GetCounter("resilience.breaker_trips")
	shedBefore, cancelledBefore, tripsBefore := shed.Value(), cancelled.Value(), trips.Value()

	baselineGoroutines := runtime.NumGoroutine()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)

	const soakFor = 1500 * time.Millisecond
	stopAt := time.Now().Add(soakFor)
	var wg sync.WaitGroup
	// Cheap requesters: should mostly succeed (some shed under spikes).
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := RunRequest{Dataset: "nell2", Kernel: "Ts", Format: "COO"}
			for time.Now().Before(stopAt) {
				postRunCtx(context.Background(), ts2.URL, r, fmt.Sprintf("cheap%d", i), nil) //nolint:errcheck
			}
		}(i)
	}
	// Heavy requesters: distinct flights contending for the budget.
	heavy := []RunRequest{
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO"},
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "HiCOO"},
		{Dataset: "nell2", Kernel: "Ttv", Format: "COO"},
	}
	for i, r := range heavy {
		wg.Add(1)
		go func(i int, r RunRequest) {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				postRunCtx(context.Background(), ts2.URL, r, fmt.Sprintf("heavy%d", i), nil) //nolint:errcheck
			}
		}(i, r)
	}
	// Abandoners: cancel shortly after sending.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "CSF"}
			for time.Now().Before(stopAt) {
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
				postRunCtx(ctx, ts2.URL, r, fmt.Sprintf("flaky%d", i), nil) //nolint:errcheck
				cancel()
			}
		}(i)
	}
	wg.Wait()

	if shed.Value() == shedBefore {
		t.Error("soak produced no sheds; the budget never bit")
	}
	if cancelled.Value() == cancelledBefore {
		t.Error("soak produced no cancellations; abandoners were not detected")
	}
	if got := trips.Value() - tripsBefore; got != 0 {
		t.Errorf("cancellations tripped %d breakers; cancels must not feed breakers", got)
	}

	// Drain: all leases return, so abandoned work stopped charging.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s2.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if n := s2.Governor().BytesInflight(); n != 0 {
		t.Fatalf("governor holds %d bytes after drain; cancelled leases leaked", n)
	}

	// Goroutines settle back near the baseline (straggling stalls and
	// HTTP keepalives need a beat). Hand-rolled: no external leak
	// detector dependencies.
	waitFor(t, 5*time.Second, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baselineGoroutines+10
	})

	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	budget := s2.Governor().Budget()
	slack := int64(64 << 20) // runtime noise, test harness, warm caches
	if grew := int64(m1.HeapInuse) - int64(m0.HeapInuse); grew > budget+slack {
		t.Errorf("heap grew %d bytes during soak, budget %d + slack %d", grew, budget, slack)
	}
}
