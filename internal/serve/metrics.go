package serve

import (
	"fmt"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
)

// handleMetrics renders every counter in the obs registry — the
// kernel-runtime counters (parallel chunks, fallbacks, breaker trips)
// and the daemon's own (requests, cache traffic, quota rejections) —
// in Prometheus text exposition format, plus a few daemon gauges. One
// registry, one scrape endpoint.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	snap := obs.CounterSnapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := "pasta_" + metricName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, snap[name])
	}

	gauges := []struct {
		name string
		val  float64
	}{
		{"daemon_uptime_seconds", time.Since(s.start).Seconds()},
		{"daemon_inflight", float64(len(s.inflight))},
		{"daemon_cache_entries", float64(s.cache.len())},
		{"govern_budget_bytes", float64(s.gov.Budget())},
		{"daemon_draining", boolGauge(s.gov.Draining())},
	}
	for _, g := range gauges {
		m := "pasta_" + g.name
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", m, m, g.val)
	}
}

// boolGauge renders a boolean as the conventional 0/1 gauge value.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// metricName maps a dotted obs counter name onto the Prometheus
// metric-name alphabet ("daemon.cache.hits" → "daemon_cache_hits").
func metricName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
