package serve

import (
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

var (
	ctrQuotaRejects    = obs.GetCounter("daemon.quota.rejections")
	ctrOverloadRejects = obs.GetCounter("daemon.overload.rejections")
	// ctrClientOverflow absorbs clients beyond the per-client tracking
	// cap so the obs registry cannot grow without bound under an
	// address-spoofing flood.
	ctrClientOverflow = obs.GetCounter("daemon.client.other.requests")
)

// maxTrackedClients bounds how many distinct per-client counters the
// daemon registers; extra clients share one overflow counter (and are
// quota-exempt rather than collectively throttled, since the overflow
// bucket mixes unrelated callers).
const maxTrackedClients = 1024

// quotas implements per-client admission: each client's lifetime
// request count lives in an obs counter (exported via /metrics), and
// the quota decision is a windowed delta over that same counter — the
// counter registry is the single source of truth, not a parallel
// bookkeeping structure.
type quotas struct {
	limit  int64         // admitted requests per window; <= 0 disables
	window time.Duration // 0 = lifetime budget

	mu sync.Mutex
	m  map[string]*clientState
}

type clientState struct {
	ctr *obs.Counter
	// base is the counter value when the current window opened.
	base        int64
	windowStart time.Time
}

func newQuotas(limit int64, window time.Duration) *quotas {
	return &quotas{limit: limit, window: window, m: make(map[string]*clientState)}
}

// admit records one request for the client and reports whether it is
// within quota. Rejected requests are not charged against the window
// (a throttled client's retries do not push recovery further away).
// On rejection, retryAfter is how long until the client's window rolls
// over and capacity returns — the value the 429's Retry-After header is
// derived from (zero for a lifetime budget, which never recovers).
func (q *quotas) admit(client string) (ok bool, retryAfter time.Duration) {
	q.mu.Lock()
	defer q.mu.Unlock()
	st, found := q.m[client]
	if !found {
		if len(q.m) >= maxTrackedClients {
			ctrClientOverflow.Inc()
			return true, 0
		}
		st = &clientState{
			ctr:         obs.GetCounter("daemon.client." + promSafe(client) + ".requests"),
			windowStart: time.Now(),
		}
		st.base = st.ctr.Value()
		q.m[client] = st
	}
	if q.limit > 0 {
		if q.window > 0 && time.Since(st.windowStart) >= q.window {
			st.windowStart = time.Now()
			st.base = st.ctr.Value()
		}
		if st.ctr.Value()-st.base >= q.limit {
			ctrQuotaRejects.Inc()
			if q.window > 0 {
				return false, time.Until(st.windowStart.Add(q.window))
			}
			return false, 0
		}
	}
	st.ctr.Inc()
	return true, 0
}

// refund returns one admitted request to the client's quota — called
// when a trial is cancelled because the client disconnected: the work
// was abandoned, so it must not count against the window. The refund
// decrements the same obs counter admit charged. If the window rolled
// over between charge and refund the decrement lands below the new
// base, granting the client one extra request in the new window — a
// bounded, self-correcting error on the generous side, which beats
// double-charging a request that produced nothing.
func (q *quotas) refund(client string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	st := q.m[client]
	if st == nil {
		// The client was over the tracking cap and charged to the shared
		// overflow counter; refund the same cell.
		ctrClientOverflow.Add(-1)
		return
	}
	st.ctr.Add(-1)
}

// clientID identifies the caller for quota accounting: the
// X-Pasta-Client header when present (trusted-network deployments name
// themselves), otherwise the connection's source address.
func clientID(r *http.Request) string {
	if c := strings.TrimSpace(r.Header.Get("X-Pasta-Client")); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil || host == "" {
		return "unknown"
	}
	return host
}

// promSafe maps an arbitrary client string onto the counter-name (and
// Prometheus metric-name) alphabet, truncating unreasonable lengths.
func promSafe(s string) string {
	if len(s) > 64 {
		s = s[:64]
	}
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}
