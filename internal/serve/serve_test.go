package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// newTestDaemon mounts a fresh Server on an httptest listener. Small
// NNZ keeps the suite fast under -race while still exercising every
// kernel.
func newTestDaemon(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.NNZ == 0 {
		cfg.NNZ = 1500
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postRun sends one POST /run and decodes the response into out (a
// *RunResponse on 2xx, *errorResponse otherwise).
func postRun(t *testing.T, base string, req RunRequest, client string) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, base+"/run", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if client != "" {
		hr.Header.Set("X-Pasta-Client", client)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func decodeRun(t *testing.T, b []byte) RunResponse {
	t.Helper()
	var rr RunResponse
	if err := json.Unmarshal(b, &rr); err != nil {
		t.Fatalf("bad run response %s: %v", b, err)
	}
	return rr
}

func decodeError(t *testing.T, b []byte) ErrorBody {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(b, &er); err != nil {
		t.Fatalf("bad error response %s: %v", b, err)
	}
	return er.Error
}

func TestDaemonHealthzVariantsMetrics(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "ok" {
		t.Fatalf("healthz = %v", hz)
	}

	resp, err = http.Get(ts.URL + "/variants")
	if err != nil {
		t.Fatal(err)
	}
	var vars []variantInfo
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(vars) != len(kernelreg.All()) {
		t.Fatalf("/variants listed %d variants, registry has %d", len(vars), len(kernelreg.All()))
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"pasta_daemon_uptime_seconds", "pasta_daemon_cache_entries"} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("/metrics missing %s:\n%s", want, mb)
		}
	}
}

// TestDaemonConcurrentMixedVariants is the headline acceptance test:
// at least 32 concurrent clients hammer one daemon across kernels,
// formats, backends, and modes with verification on. Every response
// must match the serial COO reference, and the shared caches must
// show real hit traffic (everything after the first build of each
// (dataset, variant, mode) is a hit).
func TestDaemonConcurrentMixedVariants(t *testing.T) {
	_, ts := newTestDaemon(t, Config{MaxInflight: 64})

	reqs := []RunRequest{
		{Dataset: "nell2", Kernel: "Tew", Format: "COO", Verify: true},
		{Dataset: "nell2", Kernel: "Ts", Format: "HiCOO", Verify: true},
		{Dataset: "nell2", Kernel: "Ttv", Format: "COO", Mode: 0, Verify: true},
		{Dataset: "nell2", Kernel: "Ttv", Format: "HiCOO", Mode: 1, Verify: true},
		{Dataset: "nell2", Kernel: "Ttv", Format: "CSF", Mode: 2, Verify: true},
		{Dataset: "nell2", Kernel: "Ttm", Format: "COO", Mode: 1, Verify: true},
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Mode: 0, Verify: true},
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "HiCOO", Mode: 1, Verify: true},
		{Dataset: "nell2", Kernel: "Mttkrp", Format: "fCOO", Mode: 2, Verify: true},
		{Dataset: "r2", Kernel: "Mttkrp", Format: "COO", Mode: 0, Backend: "gpu", Verify: true},
		{Dataset: "nell2", Kernel: "Ttv", Format: "COO", Mode: 1, Backend: "multigpu", Verify: true},
	}

	hits0, misses0 := ctrCacheHits.Value(), ctrCacheMisses.Value()

	const clients = 32
	const perClient = 4
	var wg sync.WaitGroup
	errs := make(chan error, clients*perClient)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				req := reqs[(g+i)%len(reqs)]
				status, body := postRun(t, ts.URL, req, fmt.Sprintf("client-%d", g))
				if status != http.StatusOK {
					errs <- fmt.Errorf("%s/%s: HTTP %d: %s", req.Kernel, req.Format, status, body)
					return
				}
				rr := decodeRun(t, body)
				if rr.Outcome != "ok" {
					errs <- fmt.Errorf("%s outcome %q (backend %s)", rr.Variant, rr.Outcome, rr.Backend)
					return
				}
				if rr.Deviation == nil {
					errs <- fmt.Errorf("%s: verify requested but no deviation reported", rr.Variant)
					return
				}
				if *rr.Deviation > 2e-3 {
					errs <- fmt.Errorf("%s deviates %g from serial COO reference", rr.Variant, *rr.Deviation)
					return
				}
				if rr.Flops <= 0 || rr.ElapsedSec <= 0 {
					errs <- fmt.Errorf("%s: implausible accounting %+v", rr.Variant, rr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// Cache accounting: r2 and nell2 are the same dataset, so the run
	// builds exactly 1 workbench + one instance per distinct
	// (variant, mode) — everything else must be hits. (Lookups that
	// joined an in-flight build count as misses, so the miss delta may
	// exceed the distinct-key count, but hits must dominate at this
	// request volume.)
	hits := ctrCacheHits.Value() - hits0
	misses := ctrCacheMisses.Value() - misses0
	distinct := int64(1 + len(reqs)) // "wb:nell2" + one inst per request shape
	if misses < distinct {
		t.Fatalf("cache misses = %d, want at least %d (one per distinct key)", misses, distinct)
	}
	if hits == 0 {
		t.Fatal("no cache hits across 128 overlapping requests")
	}
	// Every request touches 2 keys (workbench + instance).
	total := int64(clients * perClient * 2)
	if hits+misses != total {
		t.Fatalf("cache lookups = %d (hits %d + misses %d), want %d", hits+misses, hits, misses, total)
	}
}

func TestDaemonQuotaExhaustion(t *testing.T) {
	_, ts := newTestDaemon(t, Config{QuotaLimit: 3, QuotaWindow: time.Hour})

	req := RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "COO"}
	for i := 0; i < 3; i++ {
		status, body := postRun(t, ts.URL, req, "greedy")
		if status != http.StatusOK {
			t.Fatalf("request %d within quota: HTTP %d: %s", i, status, body)
		}
	}
	status, body := postRun(t, ts.URL, req, "greedy")
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: HTTP %d, want 429: %s", status, body)
	}
	if eb := decodeError(t, body); eb.Type != "quota" {
		t.Fatalf("over-quota error type %q, want \"quota\"", eb.Type)
	}
	// Another client is unaffected: quotas are per-client, not global.
	if status, body := postRun(t, ts.URL, req, "patient"); status != http.StatusOK {
		t.Fatalf("other client throttled too: HTTP %d: %s", status, body)
	}
}

// TestDaemonPanicTypedError injects a persistent panic into the OMP
// chunk hook and disables the serial fallback: the daemon must return
// a typed error payload classifying the panic — and keep serving.
func TestDaemonPanicTypedError(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})

	inj := resilience.NewInjector(7)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(context.Background(), resilience.FaultPanic, 0, 0) // every chunk: retries cannot clear it
	defer inj.Disarm()

	no := false
	req := RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "COO", Backend: "omp", Fallback: &no}
	status, body := postRun(t, ts.URL, req, "chaos")
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking kernel: HTTP %d, want 500: %s", status, body)
	}
	eb := decodeError(t, body)
	if eb.Type != "panic" {
		t.Fatalf("error type %q, want \"panic\": %s", eb.Type, body)
	}
	if eb.Kernel != "Mttkrp" || eb.Format != "COO" || eb.Backend != "omp" {
		t.Fatalf("error payload lost the trial label: %+v", eb)
	}
	if inj.Injected() == 0 {
		t.Fatal("injector never fired; the test proved nothing")
	}

	// The contained panic must not have killed the server: disarm and
	// the same request succeeds on the same cached instance.
	inj.Disarm()
	status, body = postRun(t, ts.URL, req, "chaos")
	if status != http.StatusOK {
		t.Fatalf("daemon did not survive the panic: HTTP %d: %s", status, body)
	}
	if rr := decodeRun(t, body); rr.Outcome != "ok" || !rr.CacheHit {
		t.Fatalf("post-panic run %+v, want ok on the cached instance", rr)
	}
}

// TestDaemonFallbackDegradation: with fallback enabled (the default) a
// persistently panicking OMP backend degrades to the serial rung and
// reports it instead of failing.
func TestDaemonFallbackDegradation(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})

	inj := resilience.NewInjector(11)
	inj.Install()
	defer inj.Uninstall()
	inj.Arm(context.Background(), resilience.FaultPanic, 0, 0)
	defer inj.Disarm()

	req := RunRequest{Dataset: "nell2", Kernel: "Ttv", Format: "COO", Backend: "omp", Verify: true}
	status, body := postRun(t, ts.URL, req, "chaos")
	if status != http.StatusOK {
		t.Fatalf("fallback run: HTTP %d: %s", status, body)
	}
	rr := decodeRun(t, body)
	if rr.Backend != "serial" || rr.FellFrom != "omp" {
		t.Fatalf("expected fell-back:serial from omp, got %+v", rr)
	}
	if rr.Deviation == nil || *rr.Deviation > 2e-3 {
		t.Fatalf("degraded result not verified: %+v", rr)
	}
}

func TestDaemonRequestErrors(t *testing.T) {
	_, ts := newTestDaemon(t, Config{})

	cases := []struct {
		name   string
		req    RunRequest
		status int
		typ    string
	}{
		{"unknown dataset", RunRequest{Dataset: "nope", Kernel: "Tew", Format: "COO"}, http.StatusNotFound, "not-found"},
		{"unknown kernel", RunRequest{Dataset: "nell2", Kernel: "Conv2D", Format: "COO"}, http.StatusBadRequest, "bad-request"},
		{"unknown format", RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "CSR"}, http.StatusBadRequest, "bad-request"},
		{"unknown backend", RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "COO", Backend: "tpu"}, http.StatusBadRequest, "bad-request"},
		{"mode out of range", RunRequest{Dataset: "nell2", Kernel: "Ttv", Format: "COO", Mode: 9}, http.StatusBadRequest, "bad-request"},
		// Tew has no generic level-iterator body, so Tew/CSF stays an
		// unregistered cell even under grid generation.
		{"unregistered variant", RunRequest{Dataset: "nell2", Kernel: "Tew", Format: "CSF"}, http.StatusNotFound, "unsupported"},
	}
	for _, tc := range cases {
		status, body := postRun(t, ts.URL, tc.req, "")
		if status != tc.status {
			t.Errorf("%s: HTTP %d, want %d: %s", tc.name, status, tc.status, body)
			continue
		}
		if eb := decodeError(t, body); eb.Type != tc.typ {
			t.Errorf("%s: error type %q, want %q", tc.name, eb.Type, tc.typ)
		}
	}

	resp, err := http.Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /run: HTTP %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/run", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: HTTP %d, want 400: %s", resp.StatusCode, b)
	}
}

// TestDaemonMetricsExportsObsCounters: after traffic, /metrics must
// expose both daemon counters and the kernel-runtime counters that the
// rest of the suite maintains, in Prometheus text format.
func TestDaemonMetricsExportsObsCounters(t *testing.T) {
	obs.EnableCounters(true)
	defer obs.EnableCounters(false)
	_, ts := newTestDaemon(t, Config{})

	req := RunRequest{Dataset: "nell2", Kernel: "Mttkrp", Format: "HiCOO"}
	for i := 0; i < 2; i++ {
		if status, body := postRun(t, ts.URL, req, "scraper"); status != http.StatusOK {
			t.Fatalf("HTTP %d: %s", status, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(mb)
	for _, want := range []string{
		"# TYPE pasta_daemon_requests counter",
		"pasta_daemon_cache_hits",
		"pasta_daemon_cache_misses",
		"pasta_daemon_client_scraper_requests 2",
		"pasta_parallel_chunks", // a kernel-runtime counter from internal/parallel
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestCacheEviction: a 1×1 cache must evict the cold entry and count
// it.
func TestCacheEviction(t *testing.T) {
	c := newCache(1, 1)
	ev0 := ctrCacheEvictions.Value()
	if _, hit, _ := c.getOrCreate(context.Background(), "a", func() (any, error) { return 1, nil }); hit {
		t.Fatal("first build reported a hit")
	}
	if _, hit, _ := c.getOrCreate(context.Background(), "b", func() (any, error) { return 2, nil }); hit {
		t.Fatal("distinct key reported a hit")
	}
	if got := ctrCacheEvictions.Value() - ev0; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	if _, hit, _ := c.getOrCreate(context.Background(), "a", func() (any, error) { return 1, nil }); hit {
		t.Fatal("evicted key reported a hit")
	}
	if c.len() != 1 {
		t.Fatalf("cache holds %d entries, cap is 1", c.len())
	}
}

// TestCacheSingleflight: concurrent requests for one missing key run
// the build exactly once.
func TestCacheSingleflight(t *testing.T) {
	c := newCache(4, 8)
	var builds int32
	var mu sync.Mutex
	start := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, _, err := c.getOrCreate(context.Background(), "k", func() (any, error) {
				mu.Lock()
				builds++
				mu.Unlock()
				time.Sleep(5 * time.Millisecond)
				return "built", nil
			})
			if err != nil || v != "built" {
				t.Errorf("got %v, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
}

// TestCacheFailedBuildRetries: a build error is returned to all
// waiters but not cached, so the next request rebuilds.
func TestCacheFailedBuildRetries(t *testing.T) {
	c := newCache(1, 4)
	boom := fmt.Errorf("boom")
	if _, _, err := c.getOrCreate(context.Background(), "k", func() (any, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.getOrCreate(context.Background(), "k", func() (any, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("retry after failed build: %v %v %v", v, hit, err)
	}
}
