package reorder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hicoo"
	"repro/internal/tensor"
)

func skewed(seed int64) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	return tensor.RandomCOOSkewed([]tensor.Index{2000, 300, 300}, 5000, rng)
}

func TestIdentityIsNoOp(t *testing.T) {
	x := skewed(1)
	p := Identity(x.Dims)
	if err := p.Validate(x.Dims); err != nil {
		t.Fatal(err)
	}
	y, err := p.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.AbsDiff(x, y) != 0 {
		t.Fatal("identity relabeling changed the tensor")
	}
}

func TestPermsAreValidPermutations(t *testing.T) {
	x := skewed(2)
	rng := rand.New(rand.NewSource(3))
	for name, p := range map[string]*Perm{
		"random":     Random(x.Dims, rng),
		"degree":     ByDegree(x),
		"firsttouch": FirstTouch(x),
	} {
		if err := p.Validate(x.Dims); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestApplyPreservesValuesAndInvertible(t *testing.T) {
	x := skewed(4)
	p := ByDegree(x)
	y, err := p.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != x.NNZ() {
		t.Fatal("relabeling changed nnz")
	}
	if err := y.Validate(); err != nil {
		t.Fatal(err)
	}
	back, err := p.Inverse().Apply(y)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.AbsDiff(x, back) != 0 {
		t.Fatal("inverse did not undo the relabeling")
	}
}

func TestByDegreePacksHeavyIndicesFirst(t *testing.T) {
	x := skewed(5)
	p := ByDegree(x)
	y, err := p.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, x.Dims[0])
	for _, i := range y.Inds[0] {
		counts[i]++
	}
	// New index 0 must be (one of) the heaviest.
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[0] {
			t.Fatalf("index %d heavier than index 0 after degree ordering", i)
		}
	}
}

func TestFirstTouchImprovesHiCOOBlocking(t *testing.T) {
	// Scatter the tensor with a random relabeling, then restore locality:
	// first-touch must produce (typically far) fewer HiCOO blocks than
	// the scattered version.
	x := skewed(6)
	rng := rand.New(rand.NewSource(7))
	scrambled, err := Random(x.Dims, rng).Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := FirstTouch(scrambled).Apply(scrambled)
	if err != nil {
		t.Fatal(err)
	}
	nbScrambled := hicoo.FromCOO(scrambled, 7).NumBlocks()
	nbRestored := hicoo.FromCOO(restored, 7).NumBlocks()
	if nbRestored > nbScrambled {
		t.Fatalf("first-touch increased blocks: %d -> %d", nbScrambled, nbRestored)
	}
}

func TestReorderedKernelsGiveSameResults(t *testing.T) {
	// Mttkrp on the relabeled tensor with relabeled factor matrices must
	// equal the original output with relabeled output rows.
	x := skewed(8)
	r := 4
	rng := rand.New(rand.NewSource(9))
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	want, err := core.Mttkrp(x, mats, 0)
	if err != nil {
		t.Fatal(err)
	}

	p := FirstTouch(x)
	y, err := p.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	rmats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		rmats[n] = p.ApplyToMatrix(mats[n], n)
	}
	got, err := core.Mttkrp(y, rmats, 0)
	if err != nil {
		t.Fatal(err)
	}
	// got(new row) must equal want(old row).
	m0 := p.Maps[0]
	for old := 0; old < want.Rows; old++ {
		newRow := got.Row(int(m0[old]))
		oldRow := want.Row(old)
		for c := range oldRow {
			d := float64(newRow[c] - oldRow[c])
			if d < 0 {
				d = -d
			}
			if d > 1e-3 {
				t.Fatalf("row %d col %d differs: %v vs %v", old, c, newRow[c], oldRow[c])
			}
		}
	}
}

func TestApplyToVector(t *testing.T) {
	x := tensor.NewCOO([]tensor.Index{3, 3}, 1)
	x.Append([]tensor.Index{0, 0}, 1)
	p := &Perm{Maps: [][]tensor.Index{{2, 0, 1}, {0, 1, 2}}}
	if err := p.Validate(x.Dims); err != nil {
		t.Fatal(err)
	}
	v := tensor.Vector{10, 20, 30}
	w := p.ApplyToVector(v, 0)
	// old 0 -> new 2, old 1 -> new 0, old 2 -> new 1.
	if w[2] != 10 || w[0] != 20 || w[1] != 30 {
		t.Fatalf("ApplyToVector = %v", w)
	}
	// Ttv on relabeled tensor with relabeled vector equals original.
	rng := rand.New(rand.NewSource(10))
	big := tensor.RandomCOO([]tensor.Index{50, 60}, 400, rng)
	perm := ByDegree(big)
	rb, err := perm.Apply(big)
	if err != nil {
		t.Fatal(err)
	}
	vec := tensor.RandomVector(60, rng)
	want, err := core.Ttv(big, vec, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Ttv(rb, perm.ApplyToVector(vec, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Undo the mode-0 relabeling on the output for comparison.
	inv := &Perm{Maps: [][]tensor.Index{perm.Inverse().Maps[0]}}
	restored, err := inv.Apply(got)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.AbsDiff(want, restored); d > 1e-3 {
		t.Fatalf("reordered Ttv differs by %v", d)
	}
}

func TestValidateRejectsBadMaps(t *testing.T) {
	dims := []tensor.Index{3, 3}
	bad := []*Perm{
		{Maps: [][]tensor.Index{{0, 1, 2}}},            // wrong arity
		{Maps: [][]tensor.Index{{0, 1}, {0, 1, 2}}},    // wrong length
		{Maps: [][]tensor.Index{{0, 1, 1}, {0, 1, 2}}}, // duplicate
		{Maps: [][]tensor.Index{{0, 1, 5}, {0, 1, 2}}}, // out of range
	}
	for i, p := range bad {
		if err := p.Validate(dims); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReorderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := tensor.RandomCOO([]tensor.Index{30, 20, 25}, 200, rng)
		p := Random(x.Dims, rng)
		y, err := p.Apply(x)
		if err != nil || y.Validate() != nil {
			return false
		}
		back, err := p.Inverse().Apply(y)
		if err != nil {
			return false
		}
		return tensor.AbsDiff(x, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
