// Package reorder implements sparse tensor index relabelings. The paper
// notes (§3.2.1) that the irregular vector/matrix gathers of Ttv, Ttm,
// and Mttkrp speed up when index accesses "gain a good localized pattern
// ... from reordering techniques", citing Lexi-Order (Li et al., ICS'19).
// This package provides three relabelings and the machinery to apply and
// invert them:
//
//   - Random: a destructive baseline that scatters any natural locality;
//   - ByDegree: heavy indices first, clustering the hot rows that
//     power-law tensors hammer;
//   - FirstTouch: relabel indices of each mode in first-appearance order
//     of a fiber-sorted sweep, the relabeling analog of the sort-based
//     locality restoration used by ParTI.
package reorder

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/tensor"
)

// Perm is a per-mode index relabeling: Maps[n][old] = new.
type Perm struct {
	Maps [][]tensor.Index
}

// Identity returns the identity relabeling for the given mode sizes.
func Identity(dims []tensor.Index) *Perm {
	p := &Perm{Maps: make([][]tensor.Index, len(dims))}
	for n, d := range dims {
		m := make([]tensor.Index, d)
		for i := range m {
			m[i] = tensor.Index(i)
		}
		p.Maps[n] = m
	}
	return p
}

// Random returns an independent uniform relabeling per mode.
func Random(dims []tensor.Index, rng *rand.Rand) *Perm {
	p := Identity(dims)
	for n := range p.Maps {
		m := p.Maps[n]
		rng.Shuffle(len(m), func(i, j int) { m[i], m[j] = m[j], m[i] })
	}
	return p
}

// ByDegree relabels each mode's indices by decreasing non-zero count
// (ties by original index), packing the hot indices of skewed tensors
// into a dense prefix — the simplest locality-improving ordering.
func ByDegree(t *tensor.COO) *Perm {
	p := &Perm{Maps: make([][]tensor.Index, t.Order())}
	for n := 0; n < t.Order(); n++ {
		d := int(t.Dims[n])
		counts := make([]int64, d)
		for _, i := range t.Inds[n] {
			counts[i]++
		}
		order := make([]int32, d)
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			ca, cb := counts[order[a]], counts[order[b]]
			if ca != cb {
				return ca > cb
			}
			return order[a] < order[b]
		})
		m := make([]tensor.Index, d)
		for newIdx, oldIdx := range order {
			m[oldIdx] = tensor.Index(newIdx)
		}
		p.Maps[n] = m
	}
	return p
}

// FirstTouch relabels each mode's indices in the order they are first
// encountered when sweeping the non-zeros sorted with that mode last
// (fiber order): indices that co-occur in nearby fibers receive nearby
// labels, which localizes the gathers of Ttv/Ttm/Mttkrp.
func FirstTouch(t *tensor.COO) *Perm {
	p := &Perm{Maps: make([][]tensor.Index, t.Order())}
	work := t.Clone()
	for n := 0; n < t.Order(); n++ {
		work.SortForMode(n)
		d := int(t.Dims[n])
		m := make([]tensor.Index, d)
		seen := make([]bool, d)
		next := tensor.Index(0)
		for _, i := range work.Inds[n] {
			if !seen[i] {
				seen[i] = true
				m[i] = next
				next++
			}
		}
		// Unused indices keep stable labels after all used ones.
		for i := 0; i < d; i++ {
			if !seen[i] {
				m[i] = next
				next++
			}
		}
		p.Maps[n] = m
	}
	return p
}

// Validate checks that every per-mode map is a permutation.
func (p *Perm) Validate(dims []tensor.Index) error {
	if len(p.Maps) != len(dims) {
		return fmt.Errorf("reorder: %d maps for order-%d tensor", len(p.Maps), len(dims))
	}
	for n, m := range p.Maps {
		if len(m) != int(dims[n]) {
			return fmt.Errorf("reorder: mode %d map has %d entries, want %d", n, len(m), dims[n])
		}
		seen := make([]bool, len(m))
		for _, v := range m {
			if int(v) >= len(m) || seen[v] {
				return fmt.Errorf("reorder: mode %d map is not a permutation", n)
			}
			seen[v] = true
		}
	}
	return nil
}

// Apply returns a new tensor with every coordinate relabeled. Values and
// the non-zero multiset are unchanged; the result is left unsorted.
func (p *Perm) Apply(t *tensor.COO) (*tensor.COO, error) {
	if err := p.Validate(t.Dims); err != nil {
		return nil, err
	}
	out := t.Clone()
	for n := range out.Inds {
		m := p.Maps[n]
		ind := out.Inds[n]
		for x := range ind {
			ind[x] = m[ind[x]]
		}
	}
	// Relabeling invalidates any recorded ordering.
	out.SortNatural()
	return out, nil
}

// ApplyToVector permutes a dense mode-n operand to match a relabeled
// tensor: out[new] = v[old].
func (p *Perm) ApplyToVector(v tensor.Vector, mode int) tensor.Vector {
	m := p.Maps[mode]
	out := make(tensor.Vector, len(v))
	for old, val := range v {
		out[m[old]] = val
	}
	return out
}

// ApplyToMatrix permutes the rows of a dense mode-n factor matrix.
func (p *Perm) ApplyToMatrix(u *tensor.Matrix, mode int) *tensor.Matrix {
	m := p.Maps[mode]
	out := tensor.NewMatrix(u.Rows, u.Cols)
	for old := 0; old < u.Rows; old++ {
		copy(out.Row(int(m[old])), u.Row(old))
	}
	return out
}

// Inverse returns the relabeling that undoes p.
func (p *Perm) Inverse() *Perm {
	inv := &Perm{Maps: make([][]tensor.Index, len(p.Maps))}
	for n, m := range p.Maps {
		im := make([]tensor.Index, len(m))
		for old, newIdx := range m {
			im[newIdx] = tensor.Index(old)
		}
		inv.Maps[n] = im
	}
	return inv
}
