// Package gpusim is the suite's CUDA-substitute execution substrate. The
// paper's GPU kernels are written against a grid/thread-block model; this
// package reproduces that model functionally so the identical kernel
// bodies (one-dimensional grids of one- or two-dimensional thread blocks,
// per-thread index arithmetic, atomicAdd) execute on the host and can be
// validated against the serial CPU reference implementations.
//
// Thread blocks are scheduled across a worker pool, mirroring how a GPU
// schedules blocks across streaming multiprocessors. Threads within a
// block run sequentially, which preserves the semantics of the paper's
// kernels (they are data-parallel and never use __syncthreads or shared
// memory — §3.4: "advanced techniques ... are not adopted").
//
// Timing on this simulator is NOT meaningful GPU timing; the analytic
// model in internal/perfmodel provides the paper-comparable GFLOPS.
package gpusim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/parallel"
)

// Dim3 mirrors CUDA's dim3 launch geometry.
type Dim3 struct{ X, Y, Z int }

// Count returns the number of points in the 3-D range.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// Dim1 builds a one-dimensional Dim3.
func Dim1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// Dim2 builds a two-dimensional Dim3.
func Dim2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Ctx carries the per-thread identifiers a CUDA kernel reads.
type Ctx struct {
	BlockIdx  Dim3
	ThreadIdx Dim3
	BlockDim  Dim3
	GridDim   Dim3
}

// GlobalX returns blockIdx.x*blockDim.x + threadIdx.x, the standard
// 1-D global thread index.
func (c Ctx) GlobalX() int { return c.BlockIdx.X*c.BlockDim.X + c.ThreadIdx.X }

// GlobalY returns blockIdx.y*blockDim.y + threadIdx.y.
func (c Ctx) GlobalY() int { return c.BlockIdx.Y*c.BlockDim.Y + c.ThreadIdx.Y }

// Kernel is the body executed once per thread.
type Kernel func(ctx Ctx)

// Device is a simulated CUDA device. SMs bounds block-level concurrency
// during simulation (capped by host cores).
type Device struct {
	Name               string
	SMs                int
	WarpSize           int
	MaxThreadsPerBlock int

	blocksLaunched  atomic.Int64
	threadsLaunched atomic.Int64
	kernelsLaunched atomic.Int64
}

// NewDevice returns a device with the given SM count (0 selects the host
// core count).
func NewDevice(name string, sms int) *Device {
	if sms <= 0 {
		sms = runtime.GOMAXPROCS(0)
	}
	return &Device{Name: name, SMs: sms, WarpSize: 32, MaxThreadsPerBlock: 1024}
}

// DefaultBlockThreads is the paper's 1-D thread-block size (M non-zeros are
// assigned to M/256 blocks of 256 threads, §3.2.2).
const DefaultBlockThreads = 256

// LaunchStats reports what a launch executed.
type LaunchStats struct {
	Grid, Block     Dim3
	Blocks, Threads int
}

// Launch executes the kernel over grid × block geometry and blocks until
// every thread has run. It panics on invalid geometry, mirroring a CUDA
// launch failure.
func (d *Device) Launch(grid, block Dim3, kernel Kernel) LaunchStats {
	if grid.Count() <= 0 || block.Count() <= 0 {
		panic(fmt.Sprintf("gpusim: invalid launch geometry grid=%+v block=%+v", grid, block))
	}
	if block.Count() > d.MaxThreadsPerBlock {
		panic(fmt.Sprintf("gpusim: block of %d threads exceeds device limit %d", block.Count(), d.MaxThreadsPerBlock))
	}
	nBlocks := grid.Count()
	workers := d.SMs
	if hc := runtime.GOMAXPROCS(0); workers > hc {
		workers = hc
	}
	if workers > nBlocks {
		workers = nBlocks
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				d.runBlock(grid, block, b, kernel)
			}
		}()
	}
	wg.Wait()

	st := LaunchStats{Grid: grid, Block: block, Blocks: nBlocks, Threads: nBlocks * block.Count()}
	d.blocksLaunched.Add(int64(st.Blocks))
	d.threadsLaunched.Add(int64(st.Threads))
	d.kernelsLaunched.Add(1)
	return st
}

// runBlock executes all threads of linear block b sequentially.
func (d *Device) runBlock(grid, block Dim3, b int, kernel Kernel) {
	gx := max1(grid.X)
	gy := max1(grid.Y)
	bi := Dim3{X: b % gx, Y: (b / gx) % gy, Z: b / (gx * gy)}
	ctx := Ctx{BlockIdx: bi, BlockDim: block, GridDim: grid}
	for tz := 0; tz < max1(block.Z); tz++ {
		for ty := 0; ty < max1(block.Y); ty++ {
			for tx := 0; tx < max1(block.X); tx++ {
				ctx.ThreadIdx = Dim3{X: tx, Y: ty, Z: tz}
				kernel(ctx)
			}
		}
	}
}

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

// Counters reports cumulative launch statistics for the device.
func (d *Device) Counters() (kernels, blocks, threads int64) {
	return d.kernelsLaunched.Load(), d.blocksLaunched.Load(), d.threadsLaunched.Load()
}

// AtomicAdd is the device-side atomicAdd on single-precision floats.
func AtomicAdd(addr *float32, v float32) { parallel.AtomicAddFloat32(addr, v) }

// Grid1DFor returns the 1-D grid that covers n work items with the given
// threads per block: ceil(n/threads) blocks.
func Grid1DFor(n, threadsPerBlock int) Dim3 {
	if threadsPerBlock <= 0 {
		threadsPerBlock = DefaultBlockThreads
	}
	blocks := (n + threadsPerBlock - 1) / threadsPerBlock
	if blocks < 1 {
		blocks = 1
	}
	return Dim1(blocks)
}
