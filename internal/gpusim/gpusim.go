// Package gpusim is the suite's CUDA-substitute execution substrate. The
// paper's GPU kernels are written against a grid/thread-block model; this
// package reproduces that model functionally so the identical kernel
// bodies (one-dimensional grids of one- or two-dimensional thread blocks,
// per-thread index arithmetic, atomicAdd) execute on the host and can be
// validated against the serial CPU reference implementations.
//
// Thread blocks are scheduled across a worker pool, mirroring how a GPU
// schedules blocks across streaming multiprocessors. Threads within a
// block run sequentially, which preserves the semantics of the paper's
// kernels (they are data-parallel and never use __syncthreads or shared
// memory — §3.4: "advanced techniques ... are not adopted").
//
// Timing on this simulator is NOT meaningful GPU timing; the analytic
// model in internal/perfmodel provides the paper-comparable GFLOPS.
package gpusim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Device-wide observability counters. Launches and blocks are
// per-kernel-call granularity (rare relative to thread work), so they
// count unconditionally whenever counting is enabled.
var (
	ctrLaunches = obs.GetCounter("gpusim.launches")
	ctrBlocks   = obs.GetCounter("gpusim.blocks")
)

// Dim3 mirrors CUDA's dim3 launch geometry.
type Dim3 struct{ X, Y, Z int }

// Count returns the number of points in the 3-D range.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// Dim1 builds a one-dimensional Dim3.
func Dim1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// Dim2 builds a two-dimensional Dim3.
func Dim2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Ctx carries the per-thread identifiers a CUDA kernel reads.
type Ctx struct {
	BlockIdx  Dim3
	ThreadIdx Dim3
	BlockDim  Dim3
	GridDim   Dim3
}

// GlobalX returns blockIdx.x*blockDim.x + threadIdx.x, the standard
// 1-D global thread index.
func (c Ctx) GlobalX() int { return c.BlockIdx.X*c.BlockDim.X + c.ThreadIdx.X }

// GlobalY returns blockIdx.y*blockDim.y + threadIdx.y.
func (c Ctx) GlobalY() int { return c.BlockIdx.Y*c.BlockDim.Y + c.ThreadIdx.Y }

// Kernel is the body executed once per thread.
type Kernel func(ctx Ctx)

// LaunchError reports an invalid launch geometry — the simulator's
// cudaErrorInvalidConfiguration.
type LaunchError struct {
	Grid, Block Dim3
	Reason      string
}

func (e *LaunchError) Error() string {
	return fmt.Sprintf("gpusim: %s (grid=%+v block=%+v)", e.Reason, e.Grid, e.Block)
}

// Device is a simulated CUDA device. SMs bounds block-level concurrency
// during simulation (capped by host cores).
type Device struct {
	Name               string
	SMs                int
	WarpSize           int
	MaxThreadsPerBlock int

	blocksLaunched  atomic.Int64
	threadsLaunched atomic.Int64
	kernelsLaunched atomic.Int64

	// ctx, when attached, bounds every launch: block workers check it
	// between blocks and an expired context aborts the launch with
	// parallel.ErrDeadline (the device-side analogue of a stream
	// timeout).
	ctx atomic.Pointer[context.Context]
	// launchHook/blockHook are fault-injection points: launchHook can
	// fail a launch before any block runs, blockHook runs before each
	// block (under panic containment).
	launchHook atomic.Pointer[func() error]
	blockHook  atomic.Pointer[func(block int)]
}

// SetContext attaches ctx to the device; every subsequent TryLaunch
// checks it at block granularity and aborts with parallel.ErrDeadline
// once it is done. SetContext(nil) detaches.
func (d *Device) SetContext(ctx context.Context) {
	if ctx == nil {
		d.ctx.Store(nil)
		return
	}
	d.ctx.Store(&ctx)
}

// SetLaunchHook installs h, consulted at the start of every launch; a
// non-nil return fails the launch before any block runs (fault
// injection). nil clears.
func (d *Device) SetLaunchHook(h func() error) {
	if h == nil {
		d.launchHook.Store(nil)
		return
	}
	d.launchHook.Store(&h)
}

// SetBlockHook installs h, invoked before each scheduled block with the
// linear block id, under panic containment (fault injection). nil clears.
func (d *Device) SetBlockHook(h func(block int)) {
	if h == nil {
		d.blockHook.Store(nil)
		return
	}
	d.blockHook.Store(&h)
}

// NewDevice returns a device with the given SM count (0 selects the host
// core count).
func NewDevice(name string, sms int) *Device {
	if sms <= 0 {
		sms = runtime.GOMAXPROCS(0)
	}
	return &Device{Name: name, SMs: sms, WarpSize: 32, MaxThreadsPerBlock: 1024}
}

// DefaultBlockThreads is the paper's 1-D thread-block size (M non-zeros are
// assigned to M/256 blocks of 256 threads, §3.2.2).
const DefaultBlockThreads = 256

// LaunchStats reports what a launch executed.
type LaunchStats struct {
	Grid, Block     Dim3
	Blocks, Threads int
}

// Launch executes the kernel over grid × block geometry and blocks until
// every thread has run. It panics on any launch error, mirroring an
// unchecked CUDA launch; error-aware callers use TryLaunch.
func (d *Device) Launch(grid, block Dim3, kernel Kernel) LaunchStats {
	st, err := d.TryLaunch(grid, block, kernel)
	if err != nil {
		panic(err)
	}
	return st
}

// TryLaunch is Launch with errors instead of panics: a typed
// *LaunchError for invalid geometry, the launch hook's error for an
// injected launch failure, a *parallel.WorkerPanic when a block worker
// panicked (the launch fails, the process survives), and
// parallel.ErrDeadline when the device context expired mid-grid. Device
// counters only advance on a fully completed launch.
func (d *Device) TryLaunch(grid, block Dim3, kernel Kernel) (LaunchStats, error) {
	sp := obs.Begin("gpusim.launch", d.Name, obs.PhaseLaunch, -1)
	defer sp.End()
	st := LaunchStats{Grid: grid, Block: block}
	// A zero or negative X axis is an invalid launch (CUDA's
	// cudaErrorInvalidConfiguration); zero Y/Z keep their documented
	// treated-as-1 convenience for 1-D and 2-D geometries.
	if grid.X <= 0 || grid.Y < 0 || grid.Z < 0 || block.X <= 0 || block.Y < 0 || block.Z < 0 {
		return st, &LaunchError{Grid: grid, Block: block, Reason: "invalid launch geometry"}
	}
	if block.Count() > d.MaxThreadsPerBlock {
		return st, &LaunchError{Grid: grid, Block: block,
			Reason: fmt.Sprintf("block of %d threads exceeds device limit %d", block.Count(), d.MaxThreadsPerBlock)}
	}
	if p := d.launchHook.Load(); p != nil {
		if err := (*p)(); err != nil {
			return st, fmt.Errorf("gpusim: launch failed: %w", err)
		}
	}
	var done <-chan struct{}
	var ctx context.Context
	if p := d.ctx.Load(); p != nil {
		ctx = *p
		done = ctx.Done()
	}
	var blockHook func(int)
	if p := d.blockHook.Load(); p != nil {
		blockHook = *p
	}
	// Per-block spans are opt-in (obs.WithBlockSpans): a large grid emits
	// one span per block, which is exactly what about:tracing block-level
	// occupancy views want and far too much for everything else.
	var blockTracer *obs.Tracer
	if t := obs.Current(); t != nil && t.BlockSpans() {
		blockTracer = t
	}

	nBlocks := grid.Count()
	workers := d.SMs
	if hc := runtime.GOMAXPROCS(0); workers > hc {
		workers = hc
	}
	if workers > nBlocks {
		workers = nBlocks
	}

	var (
		wg    sync.WaitGroup
		next  atomic.Int64
		abort atomic.Bool
		mu    sync.Mutex
		wp    *parallel.WorkerPanic
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				b := int(next.Add(1)) - 1
				if b >= nBlocks {
					return
				}
				if abort.Load() {
					return
				}
				if done != nil {
					select {
					case <-done:
						abort.Store(true)
						return
					default:
					}
				}
				// Contain a panicking block (kernel bug, injected fault)
				// per block so the first failure is recorded with its
				// block id and the launch fails instead of the process.
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if wp == nil {
								if inner, ok := r.(*parallel.WorkerPanic); ok {
									wp = inner
								} else {
									wp = &parallel.WorkerPanic{Worker: b, Value: r, Stack: debug.Stack()}
								}
							}
							mu.Unlock()
							abort.Store(true)
						}
					}()
					bsp := obs.BeginOn(blockTracer, "gpusim.block", d.Name, obs.PhaseChunk, b)
					defer bsp.End()
					if blockHook != nil {
						blockHook(b)
					}
					d.runBlock(grid, block, b, kernel)
				}()
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	failed := wp
	mu.Unlock()
	if failed != nil {
		return st, failed
	}
	if ctx != nil && ctx.Err() != nil {
		return st, fmt.Errorf("gpusim: launch aborted mid-grid: %w", parallel.ErrDeadline)
	}
	st.Blocks = nBlocks
	st.Threads = nBlocks * block.Count()
	d.blocksLaunched.Add(int64(st.Blocks))
	d.threadsLaunched.Add(int64(st.Threads))
	d.kernelsLaunched.Add(1)
	if obs.Counting() {
		ctrLaunches.Inc()
		ctrBlocks.Add(int64(st.Blocks))
	}
	return st, nil
}

// runBlock executes all threads of linear block b sequentially.
func (d *Device) runBlock(grid, block Dim3, b int, kernel Kernel) {
	gx := max1(grid.X)
	gy := max1(grid.Y)
	bi := Dim3{X: b % gx, Y: (b / gx) % gy, Z: b / (gx * gy)}
	ctx := Ctx{BlockIdx: bi, BlockDim: block, GridDim: grid}
	for tz := 0; tz < max1(block.Z); tz++ {
		for ty := 0; ty < max1(block.Y); ty++ {
			for tx := 0; tx < max1(block.X); tx++ {
				ctx.ThreadIdx = Dim3{X: tx, Y: ty, Z: tz}
				kernel(ctx)
			}
		}
	}
}

func max1(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

// Counters reports cumulative launch statistics for the device.
func (d *Device) Counters() (kernels, blocks, threads int64) {
	return d.kernelsLaunched.Load(), d.blocksLaunched.Load(), d.threadsLaunched.Load()
}

// AtomicAdd is the device-side atomicAdd on single-precision floats.
func AtomicAdd(addr *float32, v float32) { parallel.AtomicAddFloat32(addr, v) }

// Grid1DFor returns the 1-D grid that covers n work items with the given
// threads per block: ceil(n/threads) blocks.
func Grid1DFor(n, threadsPerBlock int) Dim3 {
	if threadsPerBlock <= 0 {
		threadsPerBlock = DefaultBlockThreads
	}
	blocks := (n + threadsPerBlock - 1) / threadsPerBlock
	if blocks < 1 {
		blocks = 1
	}
	return Dim1(blocks)
}
