package gpusim

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/parallel"
)

func TestDim3Count(t *testing.T) {
	cases := []struct {
		d    Dim3
		want int
	}{
		{Dim1(5), 5},
		{Dim2(3, 4), 12},
		{Dim3{X: 2, Y: 3, Z: 4}, 24},
		{Dim3{X: 7}, 7}, // zero Y/Z treated as 1
	}
	for _, c := range cases {
		if got := c.d.Count(); got != c.want {
			t.Errorf("Count(%+v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestLaunchCoversEveryThreadOnce(t *testing.T) {
	dev := NewDevice("test", 8)
	grid := Dim2(5, 3)
	block := Dim2(4, 2)
	total := grid.Count() * block.Count()
	seen := make([]int32, total)
	st := dev.Launch(grid, block, func(c Ctx) {
		// Linearize (block, thread) uniquely.
		b := c.BlockIdx.X + c.BlockIdx.Y*c.GridDim.X
		th := c.ThreadIdx.X + c.ThreadIdx.Y*c.BlockDim.X
		atomic.AddInt32(&seen[b*block.Count()+th], 1)
	})
	if st.Blocks != 15 || st.Threads != total {
		t.Fatalf("stats = %+v", st)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("thread %d executed %d times", i, c)
		}
	}
}

func TestLaunchCoverageProperty(t *testing.T) {
	dev := NewDevice("prop", 4)
	f := func(gxRaw, bxRaw, byRaw uint8) bool {
		gx := int(gxRaw)%20 + 1
		bx := int(bxRaw)%16 + 1
		by := int(byRaw)%8 + 1
		grid := Dim1(gx)
		block := Dim2(bx, by)
		var count atomic.Int64
		dev.Launch(grid, block, func(c Ctx) { count.Add(1) })
		return count.Load() == int64(gx*bx*by)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalIndices(t *testing.T) {
	dev := NewDevice("idx", 2)
	n := 1000
	block := Dim1(DefaultBlockThreads)
	grid := Grid1DFor(n, block.X)
	if grid.X != 4 {
		t.Fatalf("grid.X = %d, want 4", grid.X)
	}
	hits := make([]int32, n)
	dev.Launch(grid, block, func(c Ctx) {
		if i := c.GlobalX(); i < n {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("global index %d hit %d times", i, h)
		}
	}
}

func TestThreadsWithinBlockRunSequentially(t *testing.T) {
	// Within one block, thread order must be x-fastest with no
	// interleaving, so a non-atomic append is safe.
	dev := NewDevice("seq", 4)
	var order []int
	dev.Launch(Dim1(1), Dim2(3, 2), func(c Ctx) {
		order = append(order, c.ThreadIdx.Y*3+c.ThreadIdx.X)
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("thread order %v, want ascending", order)
		}
	}
}

func TestAtomicAddUnderContention(t *testing.T) {
	dev := NewDevice("atomic", 16)
	var sum float32
	n := 4096
	dev.Launch(Grid1DFor(n, 256), Dim1(256), func(c Ctx) {
		if c.GlobalX() < n {
			AtomicAdd(&sum, 1)
		}
	})
	if sum != float32(n) {
		t.Fatalf("sum = %v, want %d", sum, n)
	}
}

func TestLaunchPanicsOnBadGeometry(t *testing.T) {
	dev := NewDevice("bad", 2)
	for name, fn := range map[string]func(){
		"negative grid": func() { dev.Launch(Dim1(-2), Dim1(1), func(Ctx) {}) },
		"huge block":    func() { dev.Launch(Dim1(1), Dim1(4096), func(Ctx) {}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCounters(t *testing.T) {
	dev := NewDevice("ctr", 2)
	dev.Launch(Dim1(3), Dim1(4), func(Ctx) {})
	dev.Launch(Dim1(2), Dim1(8), func(Ctx) {})
	k, b, th := dev.Counters()
	if k != 2 || b != 5 || th != 3*4+2*8 {
		t.Fatalf("counters = %d,%d,%d", k, b, th)
	}
}

func TestNewDeviceDefaults(t *testing.T) {
	dev := NewDevice("d", 0)
	if dev.SMs < 1 || dev.WarpSize != 32 || dev.MaxThreadsPerBlock != 1024 {
		t.Fatalf("defaults = %+v", dev)
	}
}

func TestGrid1DForEdgeCases(t *testing.T) {
	if g := Grid1DFor(0, 256); g.X != 1 {
		t.Fatalf("Grid1DFor(0) = %+v, want 1 block", g)
	}
	if g := Grid1DFor(256, 256); g.X != 1 {
		t.Fatalf("Grid1DFor(256) = %+v", g)
	}
	if g := Grid1DFor(257, 256); g.X != 2 {
		t.Fatalf("Grid1DFor(257) = %+v", g)
	}
	if g := Grid1DFor(100, 0); g.X != 1 {
		t.Fatalf("Grid1DFor default threads = %+v", g)
	}
}

func TestTryLaunchRejectsBadGeometry(t *testing.T) {
	dev := NewDevice("geom", 2)
	cases := map[string]struct{ grid, block Dim3 }{
		"zero grid":      {Dim3{}, Dim1(1)},
		"negative grid":  {Dim1(-3), Dim1(1)},
		"negative block": {Dim1(1), Dim3{X: -1, Y: 1, Z: 1}},
		"zero block":     {Dim1(1), Dim3{X: 0, Y: 0, Z: 0}},
		"block too big":  {Dim1(1), Dim1(4096)},
	}
	for name, c := range cases {
		ran := false
		_, err := dev.TryLaunch(c.grid, c.block, func(Ctx) { ran = true })
		var le *LaunchError
		if !errors.As(err, &le) {
			t.Errorf("%s: err = %v, want *LaunchError", name, err)
		}
		if ran {
			t.Errorf("%s: kernel ran despite invalid geometry", name)
		}
	}
	// Dim3{} counts as 1 point per zeroed axis via Count(), but an
	// all-zero grid is still a caller bug; make sure counters never
	// advanced for any rejected launch.
	if k, b, th := dev.Counters(); k != 0 || b != 0 || th != 0 {
		t.Fatalf("counters advanced on rejected launches: %d,%d,%d", k, b, th)
	}
}

func TestTryLaunchContainsWorkerPanic(t *testing.T) {
	dev := NewDevice("panic", 4)
	_, err := dev.TryLaunch(Dim1(64), Dim1(8), func(c Ctx) {
		if c.BlockIdx.X == 13 {
			panic("kernel bug in block 13")
		}
	})
	var wp *parallel.WorkerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v (%T), want *parallel.WorkerPanic", err, err)
	}
	if wp.Value != "kernel bug in block 13" {
		t.Fatalf("panic value = %v", wp.Value)
	}
	if len(wp.Stack) == 0 {
		t.Fatal("expected the block worker's stack")
	}
	if k, _, _ := dev.Counters(); k != 0 {
		t.Fatalf("failed launch advanced kernel counter to %d", k)
	}
	// The device stays usable after a contained panic.
	if _, err := dev.TryLaunch(Dim1(4), Dim1(4), func(Ctx) {}); err != nil {
		t.Fatalf("follow-up launch failed: %v", err)
	}
}

func TestTryLaunchDeadlineMidGrid(t *testing.T) {
	dev := NewDevice("deadline", 2)
	ctx, cancel := context.WithCancel(context.Background())
	dev.SetContext(ctx)
	defer dev.SetContext(nil)

	var ran atomic.Int64
	_, err := dev.TryLaunch(Dim1(10000), Dim1(32), func(c Ctx) {
		if ran.Add(1) == 5 {
			cancel() // expire the device context mid-grid
		}
	})
	if !errors.Is(err, parallel.ErrDeadline) {
		t.Fatalf("err = %v, want parallel.ErrDeadline in chain", err)
	}
	if n := ran.Load(); n >= 10000*32 {
		t.Fatalf("launch ran all %d threads despite cancellation", n)
	}
	if k, _, _ := dev.Counters(); k != 0 {
		t.Fatal("aborted launch advanced the kernel counter")
	}
}

func TestTryLaunchHookFailure(t *testing.T) {
	dev := NewDevice("hook", 2)
	injected := errors.New("injected launch failure")
	dev.SetLaunchHook(func() error { return injected })
	ran := false
	_, err := dev.TryLaunch(Dim1(2), Dim1(2), func(Ctx) { ran = true })
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want the hook's error", err)
	}
	if ran {
		t.Fatal("kernel ran despite a failed launch hook")
	}
	dev.SetLaunchHook(nil)
	if _, err := dev.TryLaunch(Dim1(2), Dim1(2), func(Ctx) {}); err != nil {
		t.Fatalf("launch after clearing hook: %v", err)
	}
}

func TestBlockHookRunsUnderContainment(t *testing.T) {
	dev := NewDevice("bhook", 2)
	dev.SetBlockHook(func(b int) {
		if b == 1 {
			panic("hook fault")
		}
	})
	defer dev.SetBlockHook(nil)
	_, err := dev.TryLaunch(Dim1(4), Dim1(2), func(Ctx) {})
	var wp *parallel.WorkerPanic
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *parallel.WorkerPanic from the hook", err)
	}
}
