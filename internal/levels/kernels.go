package levels

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Generic kernel bodies: one Mttkrp, one Ttv, one Ttm, each
// instantiating over any hierarchy. They are the composition dividend
// of the level abstraction — a new format gets all three by declaring
// its levels — and the registered hand-tuned variants remain the fast
// paths the agreement tests pin these against.

// Mttkrp computes the matricized-tensor-times-Khatri-Rao product for
// one output mode over any hierarchy whose prefix up to the output
// mode's completion contains only output-mode levels and partial
// levels of other modes (the mode orders the generated grid prepares).
// Parallelism is over root nodes; when the root level belongs to the
// output mode (every declared signature, slot 0), distinct roots
// contribute distinct output-row bits, so the updates are race-free
// without atomics — CSF's structural advantage, inherited generically.
func Mttkrp(h *Hierarchy, mode int, mats []*tensor.Matrix, opt parallel.Options) (*tensor.Matrix, error) {
	order := h.Order()
	if len(mats) != order {
		return nil, fmt.Errorf("levels: got %d factor matrices, want %d", len(mats), order)
	}
	r := 0
	for n, u := range mats {
		if n == mode {
			continue
		}
		if u == nil {
			return nil, fmt.Errorf("levels: factor matrix %d is nil", n)
		}
		if r == 0 {
			r = u.Cols
		}
		if u.Rows != int(h.Dims[n]) || u.Cols != r {
			return nil, fmt.Errorf("levels: factor %d is %dx%d, want %dx%d", n, u.Rows, u.Cols, h.Dims[n], r)
		}
	}
	complete := h.CompletionLevel(mode)
	if complete < 0 || complete >= h.Depth()-1 {
		return nil, fmt.Errorf("levels: %s cannot instantiate Mttkrp for mode %d (completes at level %d)", h.Sig.Name, mode, complete)
	}
	for l := 0; l < complete; l++ {
		if h.Mode(l) != mode && !h.Sig.Levels[l].Partial {
			return nil, fmt.Errorf("levels: %s level %d completes mode %d before output mode %d", h.Sig.Name, l, h.Mode(l), mode)
		}
	}
	atomic := h.Mode(0) != mode
	out := tensor.NewMatrix(int(h.Dims[mode]), r)
	err := parallel.For(h.NumNodes(0), opt, func(lo, hi, _ int) {
		w := &mttkrpWalker{
			h: h, mode: mode, mats: mats, r: r, out: out, atomic: atomic,
			complete: complete,
			idx:      make([]tensor.Index, h.Order()),
			scratch:  make([]tensor.Value, h.Depth()*r),
		}
		w.descend(0, lo, hi)
	})
	return out, err
}

type mttkrpWalker struct {
	h        *Hierarchy
	mode     int
	mats     []*tensor.Matrix
	r        int
	out      *tensor.Matrix
	atomic   bool
	complete int
	idx      []tensor.Index // partial coordinate bits per tensor mode
	scratch  []tensor.Value // one r-vector per level
}

// descend walks levels 0..complete, assembling coordinate bits; at the
// output mode's completion it switches to the factor-accumulating
// gather over the subtree and flushes the r-vector into the output row.
func (w *mttkrpWalker) descend(level, lo, hi int) {
	h := w.h
	d := h.Sig.Levels[level]
	m := h.Mode(level)
	for node := lo; node < hi; node++ {
		save := w.idx[m]
		w.idx[m] = save | h.Crd[level][node]<<d.Shift
		clo, chi := int(h.Ptr[level][node]), int(h.Ptr[level][node+1])
		if level == w.complete {
			g := w.scratch[level*w.r : (level+1)*w.r]
			for i := range g {
				g[i] = 0
			}
			w.gather(level+1, clo, chi, g)
			row := w.out.Row(int(w.idx[w.mode]))
			if w.atomic {
				for i := 0; i < w.r; i++ {
					parallel.AtomicAddFloat32(&row[i], g[i])
				}
			} else {
				for i := 0; i < w.r; i++ {
					row[i] += g[i]
				}
			}
		} else {
			w.descend(level+1, clo, chi)
		}
		w.idx[m] = save
	}
}

// gather accumulates the subtree's Hadamard product of factor rows into
// dst: Σ_leaf val · ∏_{n≠mode} U_n(i_n,:), factored CSF-style so a
// factor row multiplies once per node, not once per leaf.
func (w *mttkrpWalker) gather(level, lo, hi int, dst []tensor.Value) {
	h := w.h
	d := h.Sig.Levels[level]
	m := h.Mode(level)
	last := h.Depth() - 1
	if level == last {
		u := w.mats[m]
		for node := lo; node < hi; node++ {
			full := w.idx[m] | h.Crd[level][node]<<d.Shift
			v := h.Vals[node]
			urow := u.Row(int(full))
			for i := 0; i < w.r; i++ {
				dst[i] += v * urow[i]
			}
		}
		return
	}
	if d.Partial {
		// Coarse bits only: stash and recurse; the factor applies at the
		// mode's completion level.
		for node := lo; node < hi; node++ {
			save := w.idx[m]
			w.idx[m] = save | h.Crd[level][node]<<d.Shift
			w.gather(level+1, int(h.Ptr[level][node]), int(h.Ptr[level][node+1]), dst)
			w.idx[m] = save
		}
		return
	}
	u := w.mats[m]
	buf := w.scratch[level*w.r : (level+1)*w.r]
	for node := lo; node < hi; node++ {
		full := w.idx[m] | h.Crd[level][node]
		for i := range buf {
			buf[i] = 0
		}
		save := w.idx[m]
		w.idx[m] = full
		w.gather(level+1, int(h.Ptr[level][node]), int(h.Ptr[level][node+1]), buf)
		w.idx[m] = save
		urow := u.Row(int(full))
		for i := 0; i < w.r; i++ {
			dst[i] += urow[i] * buf[i]
		}
	}
}

// Ttv computes tensor-times-vector in the product mode over any
// hierarchy whose leaf level completes the product mode (the mode
// order the generated grid prepares: product mode last). Every node at
// the second-deepest level reduces its leaves to one output non-zero,
// like CSF's TtvLeaf but for arbitrary level structures — including
// blocked ones, where the leaf coordinate combines with coarse bits
// collected along the path.
func Ttv(h *Hierarchy, mode int, v tensor.Vector, opt parallel.Options) (*tensor.COO, error) {
	if err := checkLeafKernel(h, mode, len(v)); err != nil {
		return nil, err
	}
	order := h.Order()
	last := h.Depth() - 1
	parents := h.NumNodes(last - 1)

	outDims := make([]tensor.Index, 0, order-1)
	outSlot := make([]int, order) // tensor mode → output index position
	pos := 0
	for n := 0; n < order; n++ {
		if n != mode {
			outDims = append(outDims, h.Dims[n])
			outSlot[n] = pos
			pos++
		}
	}
	out := &tensor.COO{
		Dims: outDims,
		Inds: make([][]tensor.Index, order-1),
		Vals: make([]tensor.Value, parents),
	}
	for on := range out.Inds {
		out.Inds[on] = make([]tensor.Index, parents)
	}
	// Sequential upper walk fills every parent's output coordinates and
	// the product mode's coarse bits; the leaf reduction then runs in
	// parallel over parents.
	coarse := fillParents(h, mode, func(p int, idx []tensor.Index) {
		for n := 0; n < order; n++ {
			if n != mode {
				out.Inds[outSlot[n]][p] = idx[n]
			}
		}
	})
	fptr := h.Ptr[last-1]
	leafCrd := h.Crd[last]
	shift := h.Sig.Levels[last].Shift
	err := parallel.For(parents, opt, func(lo, hi, _ int) {
		for p := lo; p < hi; p++ {
			var acc tensor.Value
			hiBits := coarse[p]
			for x := fptr[p]; x < fptr[p+1]; x++ {
				acc += h.Vals[x] * v[hiBits|leafCrd[x]<<shift]
			}
			out.Vals[p] = acc
		}
	})
	return out, err
}

// Ttm computes tensor-times-matrix in the product mode: the product
// mode becomes dense (R values per surviving fiber), so the output is
// semi-sparse, matching the core kernels' convention (dims[mode] = R,
// the product mode dense).
func Ttm(h *Hierarchy, mode int, u *tensor.Matrix, opt parallel.Options) (*tensor.SemiCOO, error) {
	if err := checkLeafKernel(h, mode, u.Rows); err != nil {
		return nil, err
	}
	order := h.Order()
	last := h.Depth() - 1
	parents := h.NumNodes(last - 1)
	r := u.Cols

	outDims := append([]tensor.Index(nil), h.Dims...)
	outDims[mode] = tensor.Index(r)
	out := tensor.NewSemiCOO(outDims, []int{mode}, parents)
	sparseIdx := make([]tensor.Index, order-1)
	coarse := fillParents(h, mode, func(_ int, idx []tensor.Index) {
		s := 0
		for n := 0; n < order; n++ {
			if n != mode {
				sparseIdx[s] = idx[n]
				s++
			}
		}
		out.AppendFiber(sparseIdx)
	})
	fptr := h.Ptr[last-1]
	leafCrd := h.Crd[last]
	shift := h.Sig.Levels[last].Shift
	err := parallel.For(parents, opt, func(lo, hi, _ int) {
		for p := lo; p < hi; p++ {
			fib := out.FiberVals(p)
			hiBits := coarse[p]
			for x := fptr[p]; x < fptr[p+1]; x++ {
				v := h.Vals[x]
				urow := u.Row(int(hiBits | leafCrd[x]<<shift))
				for i := 0; i < r; i++ {
					fib[i] += v * urow[i]
				}
			}
		}
	})
	return out, err
}

// checkLeafKernel validates the contract Ttv and Ttm share: the leaf
// level completes the product mode, every other mode completes above
// the leaf, and the operand spans the product-mode dimension.
func checkLeafKernel(h *Hierarchy, mode, operandLen int) error {
	last := h.Depth() - 1
	if last < 1 {
		return fmt.Errorf("levels: %s has a single level; need a parent level", h.Sig.Name)
	}
	if h.Mode(last) != mode || h.Sig.Levels[last].Partial {
		return fmt.Errorf("levels: %s leaf level does not complete mode %d", h.Sig.Name, mode)
	}
	if operandLen != int(h.Dims[mode]) {
		return fmt.Errorf("levels: operand length %d, want %d", operandLen, h.Dims[mode])
	}
	return nil
}

// fillParents walks levels 0..Depth-2 sequentially, invoking yield once
// per node of the second-deepest level (in node order) with the fully
// assembled coordinates of every non-product mode, and returns the
// product mode's partial bits at each such node (blocked hierarchies
// store the product mode's coarse bits above the leaf).
func fillParents(h *Hierarchy, mode int, yield func(p int, idx []tensor.Index)) []tensor.Index {
	last := h.Depth() - 1
	coarse := make([]tensor.Index, h.NumNodes(last-1))
	idx := make([]tensor.Index, h.Order())
	p := 0
	var walk func(level, lo, hi int)
	walk = func(level, lo, hi int) {
		d := h.Sig.Levels[level]
		m := h.Mode(level)
		for node := lo; node < hi; node++ {
			save := idx[m]
			idx[m] = save | h.Crd[level][node]<<d.Shift
			if level == last-1 {
				coarse[p] = idx[mode]
				yield(p, idx)
				p++
			} else {
				walk(level+1, int(h.Ptr[level][node]), int(h.Ptr[level][node+1]))
			}
			idx[m] = save
		}
	}
	walk(0, 0, h.NumNodes(0))
	return coarse
}
