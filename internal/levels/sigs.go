package levels

// Canonical signatures for the suite's formats. A format joins the
// generated kernel grid by adding a constructor here and declaring it in
// the kernelreg hierarchy table — no kernel bodies.

// COOSig declares coordinate format: the leading slot compresses (a
// sorted COO's first mode has runs), the rest are singleton index
// arrays.
func COOSig(order int) Signature {
	s := Signature{Name: "COO", Levels: []LevelDesc{{Kind: Compressed, Slot: 0}}}
	for slot := 1; slot < order; slot++ {
		s.Levels = append(s.Levels, LevelDesc{Kind: Singleton, Slot: slot})
	}
	return s
}

// CSFSig declares compressed sparse fiber: every slot compressed, the
// SPLATT tree.
func CSFSig(order int) Signature {
	s := Signature{Name: "CSF"}
	for slot := 0; slot < order; slot++ {
		s.Levels = append(s.Levels, LevelDesc{Kind: Compressed, Slot: slot})
	}
	return s
}

// BCSFSig declares blocked-CSF: the root slot splits into a coarse
// blocked level (coord >> bits) and its refinement, then the remaining
// slots compress as in CSF. The coarse root gives coarse-grained
// parallel tasks and keeps the refinement coordinates in [0, 2^bits)
// cache range — the format the generated grid ships as proof that a
// format is just a declaration.
func BCSFSig(order int, bits uint8) Signature {
	s := Signature{Name: "bCSF", Levels: []LevelDesc{
		{Kind: Blocked, Slot: 0, Shift: bits, Partial: true},
		{Kind: Blocked, Slot: 0},
	}}
	for slot := 1; slot < order; slot++ {
		s.Levels = append(s.Levels, LevelDesc{Kind: Compressed, Slot: slot})
	}
	return s
}

// HiCOOSig declares the level view of HiCOO: every mode's coarse block
// coordinate first (lexicographic block order rather than the native
// Morton order), then every mode's in-block refinement. The hand-tuned
// HiCOO kernels stay the registered fast path; this view is what the
// agreement tests pin them against.
func HiCOOSig(order int, bits uint8) Signature {
	s := Signature{Name: "HiCOO"}
	for slot := 0; slot < order; slot++ {
		s.Levels = append(s.Levels, LevelDesc{Kind: Blocked, Slot: slot, Shift: bits, Partial: true})
	}
	for slot := 0; slot < order; slot++ {
		s.Levels = append(s.Levels, LevelDesc{Kind: Blocked, Slot: slot})
	}
	return s
}
