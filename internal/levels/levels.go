// Package levels is the format-abstraction layer of the suite: a sparse
// tensor format is described as an ordered hierarchy of per-mode levels
// (taco's coordinate-hierarchy abstraction, Chou et al.), and one
// generic kernel body instantiates over any hierarchy instead of being
// rewritten per format. A level stores the coordinates of one tensor
// mode — or, for blocked formats, one bit-range of a mode — and
// position pointers into the level below, exactly the shape CSF's fiber
// arrays already have. COO, CSF, lexicographic HiCOO, and blocked-CSF
// all become declarations: a Signature listing level kinds, which
// Build materializes from a COO tensor with no format-specific code.
package levels

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Kind classifies how one level stores its coordinates.
type Kind int

const (
	// Dense levels materialize every coordinate in [0, extent); absent
	// coordinates own empty child ranges. Storage is parents × extent, so
	// dense levels suit small mode sizes only.
	Dense Kind = iota
	// Compressed levels store one node per distinct coordinate run under
	// a parent (CSF's fiber arrays).
	Compressed
	// Singleton levels store exactly one child per parent position —
	// COO's trailing index arrays, where no compression happens.
	Singleton
	// Blocked levels store one bit-range of a mode's coordinate: a
	// coarse (Partial) level holds coord>>Shift and a later Blocked
	// level with Shift 0 completes the mode with the low bits. The full
	// coordinate is reassembled by OR-ing the shifted pieces along a
	// root-to-leaf path.
	Blocked
)

func (k Kind) String() string {
	switch k {
	case Dense:
		return "dense"
	case Compressed:
		return "compressed"
	case Singleton:
		return "singleton"
	case Blocked:
		return "blocked"
	}
	return "unknown"
}

// LevelDesc declares one level of a format, independent of any concrete
// tensor: which mode-order slot it stores, how, and — for Blocked
// levels — which bit-range of the coordinate.
type LevelDesc struct {
	Kind Kind
	// Slot indexes the kernel-chosen mode order: the format declares
	// levels over slots, and Prepare decides which tensor mode each slot
	// maps to (e.g. Mttkrp puts the output mode in slot 0).
	Slot int
	// Shift is the left-shift this level's coordinates take when the
	// mode's full coordinate is reassembled (Blocked coarse levels).
	Shift uint8
	// Partial marks a level that stores only the high bits of its slot;
	// a later level with Partial=false completes the coordinate.
	Partial bool
}

// Signature is a format declared as an ordered list of levels. The
// number of levels may exceed the tensor order (blocked formats split a
// mode across two levels).
type Signature struct {
	Name   string
	Levels []LevelDesc
}

// String renders the level signature compactly, e.g.
// "bCSF: blocked(0,>>7)·blocked(0)·compressed(1)·compressed(2)".
func (s Signature) String() string {
	parts := make([]string, len(s.Levels))
	for i, d := range s.Levels {
		if d.Partial {
			parts[i] = fmt.Sprintf("%s(%d,>>%d)", d.Kind, d.Slot, d.Shift)
		} else {
			parts[i] = fmt.Sprintf("%s(%d)", d.Kind, d.Slot)
		}
	}
	return s.Name + ": " + strings.Join(parts, "·")
}

// Validate checks a signature against a tensor order: every slot in
// [0, order) must be assembled exactly once (one non-partial level,
// preceded by any partial levels in decreasing shift order).
func (s Signature) Validate(order int) error {
	done := make([]bool, order)
	lastShift := make([]int, order)
	for i := range lastShift {
		lastShift[i] = -1
	}
	for li, d := range s.Levels {
		if d.Slot < 0 || d.Slot >= order {
			return fmt.Errorf("levels: level %d slot %d out of range for order %d", li, d.Slot, order)
		}
		if done[d.Slot] {
			return fmt.Errorf("levels: level %d re-assembles completed slot %d", li, d.Slot)
		}
		if d.Partial {
			if d.Kind != Blocked {
				return fmt.Errorf("levels: level %d is partial but not blocked", li)
			}
			if d.Shift == 0 {
				return fmt.Errorf("levels: level %d is partial with shift 0", li)
			}
			if lastShift[d.Slot] >= 0 && int(d.Shift) >= lastShift[d.Slot] {
				return fmt.Errorf("levels: slot %d shifts must strictly decrease", d.Slot)
			}
			lastShift[d.Slot] = int(d.Shift)
		} else {
			if d.Shift != 0 {
				return fmt.Errorf("levels: level %d completes slot %d but shifts by %d", li, d.Slot, d.Shift)
			}
			done[d.Slot] = true
		}
	}
	for slot, ok := range done {
		if !ok {
			return fmt.Errorf("levels: slot %d never completed", slot)
		}
	}
	if last := s.Levels[len(s.Levels)-1]; last.Partial {
		return fmt.Errorf("levels: leaf level is partial")
	}
	return nil
}

// Hierarchy is a concrete tensor materialized under a signature: CSF-
// shaped coordinate and pointer arrays, one pair per level, with the
// values parallel to the leaf level.
type Hierarchy struct {
	Sig Signature
	// Dims holds the full tensor dimensions in natural mode numbering.
	Dims []tensor.Index
	// ModeOrder maps signature slot → tensor mode.
	ModeOrder []int
	// Crd[l] holds the (possibly partial) coordinate of every node at
	// level l; Crd[len-1] parallels Vals.
	Crd [][]tensor.Index
	// Ptr[l] holds, for each node at level l, the range of its children
	// at level l+1 (len = NumNodes(l)+1); there are len(Crd)-1 arrays.
	Ptr [][]int64
	// Vals holds the non-zero values at the leaves.
	Vals []tensor.Value
}

// Order returns the tensor order (number of modes, not levels).
func (h *Hierarchy) Order() int { return len(h.Dims) }

// Depth returns the number of levels.
func (h *Hierarchy) Depth() int { return len(h.Crd) }

// NNZ returns the stored non-zero count.
func (h *Hierarchy) NNZ() int { return len(h.Vals) }

// NumNodes returns the node count at one level.
func (h *Hierarchy) NumNodes(level int) int { return len(h.Crd[level]) }

// Mode returns the tensor mode level l contributes coordinates to.
func (h *Hierarchy) Mode(level int) int { return h.ModeOrder[h.Sig.Levels[level].Slot] }

// CompletionLevel returns the level at which the given tensor mode's
// coordinate is fully assembled, or -1 if the mode is not covered.
func (h *Hierarchy) CompletionLevel(mode int) int {
	for l, d := range h.Sig.Levels {
		if h.ModeOrder[d.Slot] == mode && !d.Partial {
			return l
		}
	}
	return -1
}

// StorageBytes returns the hierarchy footprint: 64-bit child pointers,
// 32-bit coordinates, 32-bit values.
func (h *Hierarchy) StorageBytes() int64 {
	var b int64
	for _, p := range h.Ptr {
		b += 8 * int64(len(p))
	}
	for _, c := range h.Crd {
		b += 4 * int64(len(c))
	}
	return b + 4*int64(len(h.Vals))
}

// Validate checks the structural invariants every kernel body assumes:
// pointer arrays span their child levels monotonically, the leaf level
// parallels the values, and reassembled coordinates stay in range.
func (h *Hierarchy) Validate() error {
	depth := h.Depth()
	if depth != len(h.Sig.Levels) {
		return fmt.Errorf("levels: %d levels materialized for %d declared", depth, len(h.Sig.Levels))
	}
	if err := h.Sig.Validate(h.Order()); err != nil {
		return err
	}
	if len(h.Ptr) != depth-1 {
		return fmt.Errorf("levels: %d pointer arrays for %d levels", len(h.Ptr), depth)
	}
	for l := 0; l < depth-1; l++ {
		if len(h.Ptr[l]) != len(h.Crd[l])+1 {
			return fmt.Errorf("levels: level %d has %d pointers for %d nodes", l, len(h.Ptr[l]), len(h.Crd[l]))
		}
		if len(h.Ptr[l]) > 0 && (h.Ptr[l][0] != 0 || h.Ptr[l][len(h.Ptr[l])-1] != int64(len(h.Crd[l+1]))) {
			return fmt.Errorf("levels: level %d pointers do not span children", l)
		}
		for i := 0; i+1 < len(h.Ptr[l]); i++ {
			if h.Ptr[l][i+1] < h.Ptr[l][i] {
				return fmt.Errorf("levels: level %d pointers not monotone at node %d", l, i)
			}
			if h.Sig.Levels[l].Kind != Dense && h.Ptr[l][i+1] == h.Ptr[l][i] {
				return fmt.Errorf("levels: level %d node %d has no children", l, i)
			}
		}
	}
	if len(h.Crd[depth-1]) != len(h.Vals) {
		return fmt.Errorf("levels: leaf count %d != value count %d", len(h.Crd[depth-1]), len(h.Vals))
	}
	var walkErr error
	idx := make([]tensor.Index, h.Order())
	h.walk(0, 0, h.NumNodes(0), idx, func(idx []tensor.Index, _ tensor.Value) {
		for n, d := range h.Dims {
			if idx[n] >= d && walkErr == nil {
				walkErr = fmt.Errorf("levels: coordinate %d out of range for mode %d (dim %d)", idx[n], n, d)
			}
		}
	})
	return walkErr
}

// ToCOO expands the hierarchy back to coordinate format (tests and the
// conversion planner's round-trip checks).
func (h *Hierarchy) ToCOO() *tensor.COO {
	out := tensor.NewCOO(h.Dims, h.NNZ())
	idx := make([]tensor.Index, h.Order())
	h.walk(0, 0, h.NumNodes(0), idx, func(idx []tensor.Index, v tensor.Value) {
		out.Append(idx, v)
	})
	return out
}

// walk traverses nodes [lo, hi) at one level depth-first, reassembling
// full coordinates and yielding every leaf.
func (h *Hierarchy) walk(level, lo, hi int, idx []tensor.Index, leaf func([]tensor.Index, tensor.Value)) {
	last := h.Depth() - 1
	d := h.Sig.Levels[level]
	m := h.Mode(level)
	for node := lo; node < hi; node++ {
		save := idx[m]
		if d.Partial {
			idx[m] = save | h.Crd[level][node]<<d.Shift
		} else {
			idx[m] = save | h.Crd[level][node]
		}
		if level == last {
			leaf(idx, h.Vals[node])
		} else {
			h.walk(level+1, int(h.Ptr[level][node]), int(h.Ptr[level][node+1]), idx, leaf)
		}
		idx[m] = save
	}
}
