package levels

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Build materializes a hierarchy for x under a signature and a slot →
// tensor-mode assignment. This is the whole cost of adding a format:
// one lexicographic sort by the per-level keys, then one run-detection
// scan per level — no format-specific conversion code. The input is not
// modified.
func Build(x *tensor.COO, sig Signature, modeOrder []int) (*Hierarchy, error) {
	order := x.Order()
	if len(modeOrder) != order {
		return nil, fmt.Errorf("levels: mode order length %d, want %d", len(modeOrder), order)
	}
	seen := make([]bool, order)
	for _, m := range modeOrder {
		if m < 0 || m >= order || seen[m] {
			return nil, fmt.Errorf("levels: invalid mode order %v", modeOrder)
		}
		seen[m] = true
	}
	if err := sig.Validate(order); err != nil {
		return nil, err
	}
	nlev := len(sig.Levels)
	m := x.NNZ()

	// Per-level key extraction: the bit-range of the slot's coordinate
	// this level stores. width(l) is bounded by the next-higher shift of
	// the same slot so split modes partition their bits exactly.
	keys := make([][]tensor.Index, nlev)
	for l, d := range sig.Levels {
		mode := modeOrder[d.Slot]
		src := x.Inds[mode]
		mask := levelMask(sig, l)
		ks := make([]tensor.Index, m)
		for i, c := range src {
			ks[i] = (c >> d.Shift) & mask
		}
		keys[l] = ks
	}

	// Sort entries lexicographically by the level-key tuple.
	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}
	parallel.SortInt32s(perm, func(a, b int32) bool {
		for l := 0; l < nlev; l++ {
			ka, kb := keys[l][a], keys[l][b]
			if ka != kb {
				return ka < kb
			}
		}
		return false
	})
	for l := range keys {
		sorted := make([]tensor.Index, m)
		for i, p := range perm {
			sorted[i] = keys[l][p]
		}
		keys[l] = sorted
	}
	vals := make([]tensor.Value, m)
	for i, p := range perm {
		vals[i] = x.Vals[p]
	}

	h := &Hierarchy{
		Sig:       sig,
		Dims:      append([]tensor.Index(nil), x.Dims...),
		ModeOrder: append([]int(nil), modeOrder...),
		Crd:       make([][]tensor.Index, nlev),
		Ptr:       make([][]int64, nlev-1),
		Vals:      vals,
	}

	// Run detection: a node at level l is a maximal run of entries
	// agreeing on keys[0..l]; Singleton levels always break (one node
	// per entry from that level down).
	brk := make([]bool, m) // carries the cumulative break condition down levels
	starts := make([]int64, 0, 16)
	prevStarts := []int64(nil) // entry offsets of the parent level's nodes
	for l := 0; l < nlev; l++ {
		// Singleton levels and the leaf always break: one node per entry
		// (the leaf parallels Vals, so it can never merge runs).
		always := sig.Levels[l].Kind == Singleton || l == nlev-1
		starts = starts[:0]
		for i := 0; i < m; i++ {
			if i == 0 || always || brk[i] || keys[l][i-1] != keys[l][i] {
				brk[i] = true
				starts = append(starts, int64(i))
			}
		}
		crd := make([]tensor.Index, len(starts))
		for n, s := range starts {
			crd[n] = keys[l][s]
		}
		h.Crd[l] = crd
		if l > 0 {
			// Parent pointers: each parent's entry range maps onto this
			// level's node numbering by searching the starts.
			ptr := make([]int64, len(prevStarts)+1)
			for i, s := range prevStarts {
				ptr[i] = int64(searchInt64(starts, s))
			}
			ptr[len(prevStarts)] = int64(len(starts))
			h.Ptr[l-1] = ptr
		}
		prevStarts = append(prevStarts[:0], starts...)
	}

	// Dense levels materialize their full extent, bottom-up so child
	// numbering is final when a parent level expands.
	for l := nlev - 1; l >= 0; l-- {
		if sig.Levels[l].Kind == Dense {
			expandDense(h, l)
		}
	}
	return h, nil
}

// levelMask returns the key mask of level l: wide open unless a higher
// partial level of the same slot already owns the upper bits.
func levelMask(sig Signature, l int) tensor.Index {
	d := sig.Levels[l]
	for j := l - 1; j >= 0; j-- {
		p := sig.Levels[j]
		if p.Slot == d.Slot && p.Partial {
			width := uint(p.Shift - d.Shift)
			return tensor.Index(1)<<width - 1
		}
	}
	return ^tensor.Index(0)
}

// denseExtent returns how many coordinates a dense level enumerates:
// the stored bit-range of the slot's dimension.
func denseExtent(h *Hierarchy, l int) int {
	d := h.Sig.Levels[l]
	dim := h.Dims[h.ModeOrder[d.Slot]]
	if dim == 0 {
		return 0
	}
	ext := int((dim-1)>>d.Shift) + 1
	if mask := levelMask(h.Sig, l); tensor.Index(ext) > mask+1 && mask != ^tensor.Index(0) {
		ext = int(mask) + 1
	}
	return ext
}

// expandDense rewrites level l so every parent owns exactly extent
// children (coordinates 0..extent-1), inserting empty nodes for absent
// coordinates; a dense leaf stores explicit zeros.
func expandDense(h *Hierarchy, l int) {
	ext := denseExtent(h, l)
	parents := 1
	if l > 0 {
		parents = h.NumNodes(l - 1)
	}
	last := h.Depth() - 1
	newCrd := make([]tensor.Index, 0, parents*ext)
	var newPtr []int64
	var newVals []tensor.Value
	if l < last {
		newPtr = make([]int64, 0, parents*ext+1)
	} else {
		newVals = make([]tensor.Value, 0, parents*ext)
	}
	lo, hi := 0, h.NumNodes(l)
	for p := 0; p < parents; p++ {
		if l > 0 {
			lo, hi = int(h.Ptr[l-1][p]), int(h.Ptr[l-1][p+1])
		}
		q := lo
		for c := 0; c < ext; c++ {
			newCrd = append(newCrd, tensor.Index(c))
			present := q < hi && h.Crd[l][q] == tensor.Index(c)
			if l < last {
				if present || q < hi {
					newPtr = append(newPtr, h.Ptr[l][q])
				} else {
					// Past the parent's last child: an empty range pinned at
					// the parent's end (Ptr[l][hi] is always valid — it is the
					// next parent's first child, or the level's end).
					newPtr = append(newPtr, h.Ptr[l][hi])
				}
			} else {
				if present {
					newVals = append(newVals, h.Vals[q])
				} else {
					newVals = append(newVals, 0)
				}
			}
			if present {
				q++
			}
		}
	}
	h.Crd[l] = newCrd
	if l < last {
		newPtr = append(newPtr, int64(len(h.Crd[l+1])))
		h.Ptr[l] = newPtr
	} else {
		h.Vals = newVals
	}
	if l > 0 {
		ptr := make([]int64, parents+1)
		for p := 0; p <= parents; p++ {
			ptr[p] = int64(p * ext)
		}
		h.Ptr[l-1] = ptr
	}
}

func searchInt64(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
