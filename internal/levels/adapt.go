package levels

import (
	"fmt"

	"repro/internal/csf"
	"repro/internal/tensor"
)

// FromCSF wraps an existing CSF tree as a hierarchy without copying:
// CSF's fiber arrays are exactly a hierarchy of compressed levels, so
// the adapter is a relabeling. The hierarchy aliases the tree's arrays
// and must be treated as read-only.
func FromCSF(c *csf.CSF) *Hierarchy {
	order := c.Order()
	// Slot i is tensor mode c.ModeOrder[i] — the tree's own level order.
	return &Hierarchy{
		Sig:       CSFSig(order),
		Dims:      c.Dims,
		ModeOrder: c.ModeOrder,
		Crd:       c.FIds,
		Ptr:       c.FPtr,
		Vals:      c.Vals,
	}
}

// BlockRoot converts a CSF-shaped hierarchy (compressed root) into
// blocked-CSF by splitting the root level into a coarse blocked level
// and its refinement. Because the root is sorted by coordinate, the
// coarse keys (crd >> bits) are already sorted too, so the split is one
// linear scan over the root nodes — the cheap direct conversion edge
// the planner weighs against rebuilding from COO.
func BlockRoot(h *Hierarchy, bits uint8) (*Hierarchy, error) {
	if len(h.Sig.Levels) == 0 || h.Sig.Levels[0].Kind != Compressed {
		return nil, fmt.Errorf("levels: BlockRoot needs a compressed root, have %s", h.Sig)
	}
	if bits == 0 {
		return nil, fmt.Errorf("levels: BlockRoot with zero block bits")
	}
	roots := h.NumNodes(0)
	mask := tensor.Index(1)<<bits - 1
	coarseCrd := make([]tensor.Index, 0, roots/2+1)
	coarsePtr := make([]int64, 0, roots/2+2)
	fineCrd := make([]tensor.Index, roots)
	for i, c := range h.Crd[0] {
		hi := c >> bits
		fineCrd[i] = c & mask
		if i == 0 || h.Crd[0][i-1]>>bits != hi {
			coarseCrd = append(coarseCrd, hi)
			coarsePtr = append(coarsePtr, int64(i))
		}
	}
	coarsePtr = append(coarsePtr, int64(roots))

	sig := Signature{Name: "bCSF", Levels: []LevelDesc{
		{Kind: Blocked, Slot: h.Sig.Levels[0].Slot, Shift: bits, Partial: true},
		{Kind: Blocked, Slot: h.Sig.Levels[0].Slot},
	}}
	sig.Levels = append(sig.Levels, h.Sig.Levels[1:]...)
	out := &Hierarchy{
		Sig:       sig,
		Dims:      h.Dims,
		ModeOrder: h.ModeOrder,
		Crd:       append([][]tensor.Index{coarseCrd, fineCrd}, h.Crd[1:]...),
		Ptr:       append([][]int64{coarsePtr}, h.Ptr...),
		Vals:      h.Vals,
	}
	return out, nil
}
