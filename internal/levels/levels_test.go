package levels

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/csf"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func testTensor(t *testing.T, dims []tensor.Index, nnz int, seed int64) *tensor.COO {
	t.Helper()
	x := tensor.RandomCOO(dims, nnz, rand.New(rand.NewSource(seed)))
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	return x
}

func cooMap(x *tensor.COO) map[string]float64 {
	out := make(map[string]float64, x.NNZ())
	idx := make([]tensor.Index, x.Order())
	for i := 0; i < x.NNZ(); i++ {
		v := x.Entry(i, idx)
		out[fmt.Sprint(idx)] += float64(v)
	}
	// Drop explicit zeros (dense levels store absent coordinates).
	for k, v := range out {
		if v == 0 {
			delete(out, k)
		}
	}
	return out
}

func mapsClose(t *testing.T, got, want map[string]float64, tol float64, what string) {
	t.Helper()
	for k, wv := range want {
		gv := got[k]
		if d := math.Abs(gv - wv); d > tol*math.Max(1, math.Abs(wv)) {
			t.Fatalf("%s: key %s = %g, want %g", what, k, gv, wv)
		}
	}
	for k, gv := range got {
		if _, ok := want[k]; !ok && math.Abs(gv) > tol {
			t.Fatalf("%s: unexpected key %s = %g", what, k, gv)
		}
	}
}

// allSigs enumerates every declared signature for one order and mode
// order — the set the round-trip and kernel tests sweep.
func allSigs(order int) map[string]Signature {
	return map[string]Signature{
		"coo":    COOSig(order),
		"csf":    CSFSig(order),
		"bcsf":   BCSFSig(order, 3),
		"hicoo":  HiCOOSig(order, 2),
		"bcsf7":  BCSFSig(order, 7),
		"hicoo7": HiCOOSig(order, 7),
	}
}

func naturalOrder(n int) []int {
	mo := make([]int, n)
	for i := range mo {
		mo[i] = i
	}
	return mo
}

func TestSignatureValidate(t *testing.T) {
	for name, sig := range allSigs(3) {
		if err := sig.Validate(3); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	bad := []Signature{
		{Name: "dup", Levels: []LevelDesc{{Kind: Compressed, Slot: 0}, {Kind: Compressed, Slot: 0}, {Kind: Compressed, Slot: 1}}},
		{Name: "missing", Levels: []LevelDesc{{Kind: Compressed, Slot: 0}, {Kind: Compressed, Slot: 1}}},
		{Name: "partial-leaf", Levels: []LevelDesc{{Kind: Compressed, Slot: 0}, {Kind: Compressed, Slot: 1}, {Kind: Compressed, Slot: 2}, {Kind: Blocked, Slot: 0, Shift: 4, Partial: true}}},
		{Name: "oob", Levels: []LevelDesc{{Kind: Compressed, Slot: 3}}},
		{Name: "shifted-final", Levels: []LevelDesc{{Kind: Compressed, Slot: 0, Shift: 2}, {Kind: Compressed, Slot: 1}, {Kind: Compressed, Slot: 2}}},
	}
	for _, sig := range bad {
		if err := sig.Validate(3); err == nil {
			t.Errorf("%s: Validate accepted a malformed signature", sig.Name)
		}
	}
}

func TestBuildRoundTrip(t *testing.T) {
	shapes := []struct {
		dims []tensor.Index
		nnz  int
	}{
		{[]tensor.Index{24, 20, 16}, 500},
		{[]tensor.Index{300, 250, 200}, 300},
		{[]tensor.Index{50, 1, 60}, 200},
		{[]tensor.Index{13, 17}, 80},
	}
	for _, sh := range shapes {
		x := testTensor(t, sh.dims, sh.nnz, 42)
		want := cooMap(x)
		order := x.Order()
		for name, sig := range allSigs(order) {
			for mode := 0; mode < order; mode++ {
				mo := append(append([]int{mode}, naturalOrder(order)[:mode]...), naturalOrder(order)[mode+1:]...)
				h, err := Build(x, sig, mo)
				if err != nil {
					t.Fatalf("%v %s mode %d: %v", sh.dims, name, mode, err)
				}
				if err := h.Validate(); err != nil {
					t.Fatalf("%v %s mode %d: %v", sh.dims, name, mode, err)
				}
				mapsClose(t, cooMap(h.ToCOO()), want, 1e-12, fmt.Sprintf("%v %s mode %d", sh.dims, name, mode))
			}
		}
	}
}

func TestBuildDenseLevel(t *testing.T) {
	x := testTensor(t, []tensor.Index{6, 8, 5}, 40, 7)
	sig := Signature{Name: "dense-root", Levels: []LevelDesc{
		{Kind: Dense, Slot: 0},
		{Kind: Compressed, Slot: 1},
		{Kind: Compressed, Slot: 2},
	}}
	h, err := Build(x, sig, naturalOrder(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.NumNodes(0); got != 6 {
		t.Fatalf("dense root has %d nodes, want full extent 6", got)
	}
	mapsClose(t, cooMap(h.ToCOO()), cooMap(x), 1e-12, "dense-root")

	// A dense leaf stores explicit zeros for absent coordinates.
	leaf := Signature{Name: "dense-leaf", Levels: []LevelDesc{
		{Kind: Compressed, Slot: 0},
		{Kind: Compressed, Slot: 1},
		{Kind: Dense, Slot: 2},
	}}
	hl, err := Build(x, leaf, naturalOrder(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := hl.Validate(); err != nil {
		t.Fatal(err)
	}
	if hl.NNZ()%5 != 0 {
		t.Fatalf("dense leaf count %d not a multiple of the extent", hl.NNZ())
	}
	mapsClose(t, cooMap(hl.ToCOO()), cooMap(x), 1e-12, "dense-leaf")
}

func TestFromCSFAndBlockRoot(t *testing.T) {
	x := testTensor(t, []tensor.Index{40, 30, 20}, 400, 3)
	want := cooMap(x)
	mo := []int{1, 0, 2}
	c, err := csf.FromCOO(x, mo)
	if err != nil {
		t.Fatal(err)
	}
	h := FromCSF(c)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	mapsClose(t, cooMap(h.ToCOO()), want, 1e-12, "FromCSF")

	b, err := BlockRoot(h, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	mapsClose(t, cooMap(b.ToCOO()), want, 1e-12, "BlockRoot")

	// The split must agree with building blocked-CSF from scratch.
	direct, err := Build(x, BCSFSig(3, 3), mo)
	if err != nil {
		t.Fatal(err)
	}
	mapsClose(t, cooMap(direct.ToCOO()), cooMap(b.ToCOO()), 1e-12, "BlockRoot vs Build")
	if b.NumNodes(0) != direct.NumNodes(0) {
		t.Fatalf("BlockRoot has %d coarse nodes, direct build %d", b.NumNodes(0), direct.NumNodes(0))
	}

	if _, err := BlockRoot(b, 3); err == nil {
		t.Fatal("BlockRoot accepted a blocked root")
	}
}

// refMttkrp computes Mttkrp by direct summation.
func refMttkrp(x *tensor.COO, mode int, mats []*tensor.Matrix, r int) *tensor.Matrix {
	out := tensor.NewMatrix(int(x.Dims[mode]), r)
	idx := make([]tensor.Index, x.Order())
	for e := 0; e < x.NNZ(); e++ {
		v := x.Entry(e, idx)
		row := out.Row(int(idx[mode]))
		for i := 0; i < r; i++ {
			p := v
			for n := 0; n < x.Order(); n++ {
				if n != mode {
					p *= mats[n].At(int(idx[n]), i)
				}
			}
			row[i] += p
		}
	}
	return out
}

func matMap(m *tensor.Matrix) map[string]float64 {
	out := make(map[string]float64)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if v := m.At(i, j); v != 0 {
				out[fmt.Sprintf("r%d,c%d", i, j)] = float64(v)
			}
		}
	}
	return out
}

func TestGenericKernelsAgainstReference(t *testing.T) {
	const r = 4
	shapes := [][]tensor.Index{
		{24, 20, 16},
		{50, 1, 60},
		{13, 17},
	}
	opt := parallel.Options{}
	for _, dims := range shapes {
		x := testTensor(t, dims, 300, 11)
		order := x.Order()
		rng := rand.New(rand.NewSource(5))
		mats := make([]*tensor.Matrix, order)
		for n := range mats {
			mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
			mats[n].Randomize(rng)
		}
		for name, sig := range allSigs(order) {
			for mode := 0; mode < order; mode++ {
				what := fmt.Sprintf("%v %s mode %d", dims, name, mode)
				others := make([]int, 0, order-1)
				for n := 0; n < order; n++ {
					if n != mode {
						others = append(others, n)
					}
				}
				// Mttkrp: output mode in slot 0.
				hRoot, err := Build(x, sig, append([]int{mode}, others...))
				if err != nil {
					t.Fatal(what, err)
				}
				got, err := Mttkrp(hRoot, mode, mats, opt)
				if err != nil {
					t.Fatal(what, err)
				}
				mapsClose(t, matMap(got), matMap(refMttkrp(x, mode, mats, r)), 2e-3, what+" Mttkrp")

				// Ttv/Ttm: product mode in the last slot.
				hLeaf, err := Build(x, sig, append(append([]int{}, others...), mode))
				if err != nil {
					t.Fatal(what, err)
				}
				vec := tensor.RandomVector(int(x.Dims[mode]), rand.New(rand.NewSource(int64(mode))))
				tv, err := Ttv(hLeaf, mode, vec, opt)
				if err != nil {
					t.Fatal(what, err)
				}
				wantTv := make(map[string]float64)
				idx := make([]tensor.Index, order)
				oidx := make([]tensor.Index, 0, order-1)
				for e := 0; e < x.NNZ(); e++ {
					v := x.Entry(e, idx)
					oidx = oidx[:0]
					for _, n := range others {
						oidx = append(oidx, idx[n])
					}
					wantTv[fmt.Sprint(oidx)] += float64(v) * float64(vec[idx[mode]])
				}
				mapsClose(t, cooMap(tv), wantTv, 2e-3, what+" Ttv")

				u := tensor.NewMatrix(int(x.Dims[mode]), r)
				u.Randomize(rand.New(rand.NewSource(int64(mode) + 100)))
				tm, err := Ttm(hLeaf, mode, u, opt)
				if err != nil {
					t.Fatal(what, err)
				}
				wantTm := make(map[string]float64)
				for e := 0; e < x.NNZ(); e++ {
					v := x.Entry(e, idx)
					for i := 0; i < r; i++ {
						key := make([]tensor.Index, order)
						copy(key, idx)
						key[mode] = tensor.Index(i)
						wantTm[fmt.Sprint(key)] += float64(v) * float64(u.At(int(idx[mode]), i))
					}
				}
				mapsClose(t, cooMap(tm.ToCOO()), wantTm, 2e-3, what+" Ttm")
			}
		}
	}
}

// TestMttkrpAtomicPath exercises the atomic fallback: a hierarchy whose
// root level is not the output mode still produces correct results.
func TestMttkrpAtomicPath(t *testing.T) {
	x := testTensor(t, []tensor.Index{20, 24, 16}, 300, 13)
	const r = 4
	rng := rand.New(rand.NewSource(5))
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	// The root holds another mode's coarse bits (partial), so distinct
	// roots may share output rows and the walker must fall back to
	// atomic updates.
	sig := Signature{Name: "coarse-first", Levels: []LevelDesc{
		{Kind: Blocked, Slot: 1, Shift: 2, Partial: true},
		{Kind: Compressed, Slot: 0},
		{Kind: Blocked, Slot: 1},
		{Kind: Compressed, Slot: 2},
	}}
	h, err := Build(x, sig, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Mttkrp(h, 0, mats, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mapsClose(t, matMap(got), matMap(refMttkrp(x, 0, mats, r)), 2e-3, "atomic Mttkrp")
}

// TestMttkrpRejectsBadPrefix pins the contract error: a hierarchy that
// completes another mode before the output mode cannot instantiate
// Mttkrp for it.
func TestMttkrpRejectsBadPrefix(t *testing.T) {
	x := testTensor(t, []tensor.Index{10, 12, 14}, 100, 17)
	h, err := Build(x, CSFSig(3), []int{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Mttkrp(h, 0, nil, parallel.Options{}); err == nil {
		t.Fatal("Mttkrp accepted a hierarchy whose root completes another mode")
	}
	v := tensor.RandomVector(14, rand.New(rand.NewSource(1)))
	if _, err := Ttv(h, 0, v, parallel.Options{}); err == nil {
		t.Fatal("Ttv accepted a hierarchy whose leaf is another mode")
	}
}
