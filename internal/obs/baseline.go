package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineSchema tags natively written baseline files.
const BaselineSchema = "pstb-baseline/v1"

// BaselineRecord is one per-variant GFLOPS data point: the unit of
// perf-baseline tracking. The fields mirror the rows pastabench's
// -json export writes into results/series/*.json, so a committed
// series file doubles as a baseline without conversion.
type BaselineRecord struct {
	// Figure scopes the record ("fig4"); empty records match any scope.
	Figure  string  `json:"figure,omitempty"`
	Tensor  string  `json:"tensor"`
	Kernel  string  `json:"kernel"`
	Format  string  `json:"format"`
	Backend string  `json:"backend,omitempty"`
	Source  string  `json:"source,omitempty"` // "modeled" | "measured"
	GFLOPS  float64 `json:"gflops"`
}

// Key is the record's identity: one (figure, tensor, variant, source)
// performance point.
func (r BaselineRecord) Key() string {
	v := r.Kernel + "/" + r.Format
	if r.Backend != "" {
		v += "@" + r.Backend
	}
	return strings.Join([]string{r.Figure, r.Tensor, v, r.Source}, "|")
}

// Baseline is a keyed store of per-variant GFLOPS records.
type Baseline struct {
	recs map[string]BaselineRecord
}

// NewBaseline returns an empty store.
func NewBaseline() *Baseline {
	return &Baseline{recs: make(map[string]BaselineRecord)}
}

// Add inserts or replaces the record under its key.
func (b *Baseline) Add(r BaselineRecord) { b.recs[r.Key()] = r }

// Len reports how many records the store holds.
func (b *Baseline) Len() int { return len(b.recs) }

// Lookup returns the stored GFLOPS for a record's identity.
func (b *Baseline) Lookup(r BaselineRecord) (float64, bool) {
	got, ok := b.recs[r.Key()]
	return got.GFLOPS, ok
}

// Records returns every stored record, key-sorted for deterministic
// serialization.
func (b *Baseline) Records() []BaselineRecord {
	out := make([]BaselineRecord, 0, len(b.recs))
	for _, r := range b.recs {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// baselineFile is the native on-disk schema.
type baselineFile struct {
	Schema  string           `json:"schema"`
	Records []BaselineRecord `json:"records"`
}

// seriesFile is the pastabench results/series/*.json schema (the
// subset of fields baseline tracking consumes).
type seriesFile struct {
	Figure string           `json:"figure"`
	Rows   []BaselineRecord `json:"rows"`
}

// WriteFile writes the store in the native schema.
func (b *Baseline) WriteFile(path string) error {
	data, err := json.MarshalIndent(baselineFile{Schema: BaselineSchema, Records: b.Records()}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadBaselineFile reads one baseline file into b, accepting either
// the native pstb-baseline schema or a pastabench series file (rows
// inherit the file's figure when they carry none).
func (b *Baseline) LoadBaselineFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var nat baselineFile
	if err := json.Unmarshal(data, &nat); err == nil && nat.Schema == BaselineSchema {
		for _, r := range nat.Records {
			b.Add(r)
		}
		return nil
	}
	var ser seriesFile
	if err := json.Unmarshal(data, &ser); err != nil {
		return fmt.Errorf("obs: %s is neither a %s file nor a series file: %w", path, BaselineSchema, err)
	}
	if len(ser.Rows) == 0 {
		return fmt.Errorf("obs: %s contains no baseline rows", path)
	}
	for _, r := range ser.Rows {
		if r.Figure == "" {
			r.Figure = ser.Figure
		}
		b.Add(r)
	}
	return nil
}

// LoadBaselineDir loads every *.json file in dir into one store.
func LoadBaselineDir(dir string) (*Baseline, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("obs: no *.json baseline files in %s", dir)
	}
	sort.Strings(paths)
	b := NewBaseline()
	for _, p := range paths {
		if err := b.LoadBaselineFile(p); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// Regression is one current record that fell below its baseline's
// tolerance band.
type Regression struct {
	Key      string
	Baseline float64
	Current  float64
	// Ratio is Current/Baseline (< 1-tolerance to be reported).
	Ratio float64
}

func (r Regression) String() string {
	return fmt.Sprintf("%s: %.3f GFLOPS vs baseline %.3f (x%.2f)", r.Key, r.Current, r.Baseline, r.Ratio)
}

// Check compares current records against the stored baselines with a
// relative tolerance band: a record regresses when its GFLOPS fall
// below baseline*(1-tol). Records with no stored baseline are skipped
// (a new variant is not a regression); matched reports how many
// records had a baseline to compare against.
func (b *Baseline) Check(current []BaselineRecord, tol float64) (regs []Regression, matched int) {
	if tol < 0 {
		tol = 0
	}
	for _, r := range current {
		base, ok := b.Lookup(r)
		if !ok || base <= 0 {
			continue
		}
		matched++
		if r.GFLOPS < base*(1-tol) {
			regs = append(regs, Regression{
				Key: r.Key(), Baseline: base, Current: r.GFLOPS,
				Ratio: r.GFLOPS / base,
			})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio < regs[j].Ratio })
	return regs, matched
}
