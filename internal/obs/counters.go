package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one named atomic event counter. Counters are cheap enough
// to bump unconditionally at coarse granularity (per kernel launch,
// per pool acquisition, per resilience event); per-operation hot paths
// (atomic float adds, chunk claims) additionally gate on Counting() so
// a process with counting off pays only an atomic bool load.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registry key.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

var counterReg struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// GetCounter returns the counter registered under name, creating it on
// first use. Instrumented packages call this once at init and keep the
// pointer, so the hot path never touches the registry lock.
func GetCounter(name string) *Counter {
	counterReg.mu.RLock()
	c := counterReg.m[name]
	counterReg.mu.RUnlock()
	if c != nil {
		return c
	}
	counterReg.mu.Lock()
	defer counterReg.mu.Unlock()
	if counterReg.m == nil {
		counterReg.m = make(map[string]*Counter)
	}
	if c = counterReg.m[name]; c == nil {
		c = &Counter{name: name}
		counterReg.m[name] = c
	}
	return c
}

// CounterNames lists every registered counter name, sorted.
func CounterNames() []string {
	counterReg.mu.RLock()
	defer counterReg.mu.RUnlock()
	out := make([]string, 0, len(counterReg.m))
	for k := range counterReg.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CounterSnapshot captures every registered counter's current value.
func CounterSnapshot() map[string]int64 {
	counterReg.mu.RLock()
	defer counterReg.mu.RUnlock()
	out := make(map[string]int64, len(counterReg.m))
	for k, c := range counterReg.m {
		out[k] = c.Value()
	}
	return out
}

// DiffSnapshot returns after-before per counter, keeping only non-zero
// deltas (counters are monotonic, so a zero delta means "nothing
// happened here" and would just be table noise).
func DiffSnapshot(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// ResetCounters zeroes every registered counter (test isolation; the
// harnesses use snapshot deltas and never need this).
func ResetCounters() {
	counterReg.mu.RLock()
	defer counterReg.mu.RUnlock()
	for _, c := range counterReg.m {
		c.v.Store(0)
	}
}

// counting gates the per-operation hot-path counters.
var counting atomic.Bool

// EnableCounters turns the hot-path counters on or off. Coarse
// counters (launches, pool hits, resilience events) count regardless.
func EnableCounters(on bool) { counting.Store(on) }

// Counting reports whether hot-path counting is enabled.
func Counting() bool { return counting.Load() }
