package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

// TraceEvent is one Chrome trace_event object — the subset of the
// trace-event format the suite emits ("X" complete events for
// intervals, "i" instant events) and the validator checks ("B"/"E"
// duration pairs are accepted on input for traces produced elsewhere).
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat,omitempty"`
	Ph   string `json:"ph"`
	// Ts and Dur are microseconds, per the trace-event spec.
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// traceDoc is the JSON-object form of a trace file, the one
// about:tracing and Perfetto both load.
type traceDoc struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// spanTid maps a span's worker id onto a Chrome thread id: harness
// spans (worker -1) render on tid 0, worker w on tid w+1.
func spanTid(s Span) int { return int(s.Worker) + 1 }

func spanArgs(s Span) map[string]string {
	if s.Variant == "" && len(s.Attrs) == 0 {
		return nil
	}
	args := make(map[string]string, len(s.Attrs)+1)
	if s.Variant != "" {
		args["variant"] = s.Variant
	}
	for _, a := range s.Attrs {
		args[a.Key] = a.Val
	}
	return args
}

// ToTraceEvents converts recorded spans into Chrome trace events.
func ToTraceEvents(spans []Span) []TraceEvent {
	evs := make([]TraceEvent, 0, len(spans))
	for _, s := range spans {
		ev := TraceEvent{
			Name: s.Name, Cat: s.Phase.String(),
			Ts:  float64(s.Start) / float64(time.Microsecond),
			Pid: 1, Tid: spanTid(s), Args: spanArgs(s),
		}
		if s.Instant {
			ev.Ph = "i"
			ev.S = "t"
		} else {
			ev.Ph = "X"
			ev.Dur = float64(s.Dur) / float64(time.Microsecond)
		}
		evs = append(evs, ev)
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Ts < evs[j].Ts })
	return evs
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document
// that loads in about:tracing and Perfetto.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	doc := traceDoc{TraceEvents: ToTraceEvents(spans), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// WriteChromeTraceFile writes the trace to path and validates the
// bytes it just wrote, so a malformed export can never be shipped as
// an artifact silently.
func WriteChromeTraceFile(path string, spans []Span) error {
	var b strings.Builder
	if err := WriteChromeTrace(&b, spans); err != nil {
		return err
	}
	data := []byte(b.String())
	if err := ValidateChromeTrace(data); err != nil {
		return fmt.Errorf("obs: refusing to write malformed trace: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// jsonlSpan is the JSONL event-log record for one span.
type jsonlSpan struct {
	Name    string            `json:"name"`
	Variant string            `json:"variant,omitempty"`
	Phase   string            `json:"phase"`
	Worker  int32             `json:"worker"`
	Instant bool              `json:"instant,omitempty"`
	StartUs float64           `json:"start_us"`
	DurUs   float64           `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL renders spans as a JSON-Lines event log, one span per
// line, for downstream tools that stream rather than load a document.
func WriteJSONL(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		var attrs map[string]string
		if len(s.Attrs) > 0 {
			attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				attrs[a.Key] = a.Val
			}
		}
		rec := jsonlSpan{
			Name: s.Name, Variant: s.Variant, Phase: s.Phase.String(),
			Worker: s.Worker, Instant: s.Instant,
			StartUs: float64(s.Start) / float64(time.Microsecond),
			DurUs:   float64(s.Dur) / float64(time.Microsecond),
			Attrs:   attrs,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// PhaseSummary aggregates the spans of one (phase, name) pair.
type PhaseSummary struct {
	Phase Phase
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
}

// Mean is the average span duration.
func (p PhaseSummary) Mean() time.Duration {
	if p.Count == 0 {
		return 0
	}
	return p.Total / time.Duration(p.Count)
}

// Summarize aggregates spans by (phase, name), sorted by descending
// total time — the "where did the time go" table.
func Summarize(spans []Span) []PhaseSummary {
	type key struct {
		p Phase
		n string
	}
	agg := make(map[key]*PhaseSummary)
	var order []key
	for _, s := range spans {
		if s.Instant {
			continue
		}
		k := key{s.Phase, s.Name}
		ps := agg[k]
		if ps == nil {
			ps = &PhaseSummary{Phase: s.Phase, Name: s.Name}
			agg[k] = ps
			order = append(order, k)
		}
		ps.Count++
		ps.Total += s.Dur
		if s.Dur > ps.Max {
			ps.Max = s.Dur
		}
	}
	out := make([]PhaseSummary, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// WriteSummary prints the aggregated span table.
func WriteSummary(w io.Writer, spans []Span) {
	sums := Summarize(spans)
	if len(sums) == 0 {
		fmt.Fprintln(w, "(no spans recorded)")
		return
	}
	fmt.Fprintf(w, "%-10s %-24s %8s %14s %14s %14s\n",
		"phase", "name", "count", "total", "mean", "max")
	for _, s := range sums {
		fmt.Fprintf(w, "%-10s %-24s %8d %14v %14v %14v\n",
			s.Phase, s.Name, s.Count, s.Total.Round(time.Microsecond),
			s.Mean().Round(time.Microsecond), s.Max.Round(time.Microsecond))
	}
}

// WriteCounterSummary prints a name-sorted counter table; when
// nonZeroOnly is set, idle counters are elided.
func WriteCounterSummary(w io.Writer, snap map[string]int64, nonZeroOnly bool) {
	names := make([]string, 0, len(snap))
	for k := range snap {
		if nonZeroOnly && snap[k] == 0 {
			continue
		}
		names = append(names, k)
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintln(w, "(no counters)")
		return
	}
	for _, n := range names {
		fmt.Fprintf(w, "%-36s %12d\n", n, snap[n])
	}
}
