// Package obs is the suite's zero-dependency observability layer:
// execution tracing, runtime counters, trace exporters, and
// perf-baseline tracking. The paper's evaluation (§5) explains *why* a
// kernel is slow by decomposing execution into phases — format
// conversion, sorting, kernel launch, per-thread chunks, reduction —
// and attributing time to each; this package gives every harness in
// the suite that decomposition for free.
//
// The design constraint is that observability must cost nothing when
// off: benchmark numbers are the product, and a tracer that perturbs
// them is worse than none. Tracing is therefore process-global and
// pointer-gated — when no tracer is enabled, Begin is a single atomic
// pointer load returning a zero Active whose End is a no-op, with zero
// allocations on the instrumented hot paths (enforced by a
// testing.AllocsPerRun test in internal/parallel). When a tracer is
// enabled, spans are recorded into per-worker shards so concurrent
// workers almost never contend on a lock.
//
// Counters are always-on atomic.Int64 cells in a global registry;
// instrumentation sites on per-operation hot paths (atomic adds,
// chunk claims) additionally gate on Counting() so a disabled process
// pays only an atomic bool load. Harnesses attribute counter deltas to
// a kernel variant by snapshotting around each measurement
// (CounterSnapshot / DiffSnapshot).
//
// Exporters render recorded spans as Chrome trace_event JSON (loads
// directly in about:tracing or Perfetto), as a JSONL event log, or as
// an aggregated text summary; Baseline reads/writes per-variant GFLOPS
// records and flags regressions against a tolerance band.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Phase classifies a span into the paper's execution decomposition.
type Phase uint8

const (
	// PhasePrepare covers a variant's whole untimed preprocessing stage.
	PhasePrepare Phase = iota
	// PhaseConvert covers a format conversion (COO→HiCOO/CSF/fCOO).
	PhaseConvert
	// PhaseSort covers index sorting (fiber sort, Morton order, CSF).
	PhaseSort
	// PhaseLaunch covers one simulated-GPU kernel launch.
	PhaseLaunch
	// PhaseChunk covers work-shared execution: a parallel.For loop or a
	// single simulated thread block.
	PhaseChunk
	// PhaseReduce covers a parallel reduction merge.
	PhaseReduce
	// PhaseVerify covers a verification pass against the reference.
	PhaseVerify
	// PhaseFallback marks resilience events: retries, degradations,
	// breaker trips.
	PhaseFallback
	// PhaseTrial covers one timed measurement trial of the harness.
	PhaseTrial

	numPhases
)

var phaseNames = [numPhases]string{
	"prepare", "convert", "sort", "launch", "chunk",
	"reduce", "verify", "fallback", "trial",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key string
	Val string
}

// Span is one recorded interval (or instant, when Dur == 0 and the
// span was emitted by Emit). Start is the offset from the tracer's
// epoch, so spans from all workers share one monotonic clock.
type Span struct {
	Name    string
	Variant string
	Phase   Phase
	// Worker is the worker/block id the span ran on, or -1 for
	// harness-level spans.
	Worker int32
	// Instant marks an Emit event (a point in time, not an interval).
	Instant bool
	Start   time.Duration
	Dur     time.Duration
	Attrs   []Attr
}

// shardCount must be a power of two; 64 comfortably exceeds the worker
// counts the suite runs with, so concurrent workers land on distinct
// shards.
const shardCount = 64

type shard struct {
	mu    sync.Mutex
	spans []Span
	// pad spaces shards a cache line apart so two workers appending to
	// neighbouring shards do not false-share the mutexes.
	_ [40]byte
}

// Tracer records spans into per-worker shards. The zero value is not
// usable; construct with New.
type Tracer struct {
	// epoch anchors every span's Start offset; time.Since(epoch) reads
	// the monotonic clock.
	epoch time.Time
	// wall is the wall-clock time of the epoch, for export metadata.
	wall time.Time
	// blockSpans opts in to one span per simulated GPU block — precise
	// but voluminous; off by default.
	blockSpans bool
	shards     [shardCount]shard
}

// Option configures a Tracer at construction.
type Option func(*Tracer)

// WithBlockSpans records one span per simulated-GPU thread block
// (default: only one span per launch). Block spans make a single
// launch's imbalance visible in the trace viewer but multiply the
// event count by the grid size.
func WithBlockSpans() Option {
	return func(t *Tracer) { t.blockSpans = true }
}

// New returns an empty tracer whose epoch is now.
func New(opts ...Option) *Tracer {
	now := time.Now()
	t := &Tracer{epoch: now, wall: now}
	for _, o := range opts {
		o(t)
	}
	return t
}

// BlockSpans reports whether per-block GPU spans were requested.
func (t *Tracer) BlockSpans() bool { return t.blockSpans }

// Epoch returns the wall-clock time offsets are measured from.
func (t *Tracer) Epoch() time.Time { return t.wall }

func (t *Tracer) record(s Span) {
	sh := &t.shards[uint32(s.Worker+1)&(shardCount-1)]
	sh.mu.Lock()
	sh.spans = append(sh.spans, s)
	sh.mu.Unlock()
}

// Spans snapshots every recorded span, sorted by start offset (ties by
// longer-first so enclosing spans precede their children).
func (t *Tracer) Spans() []Span {
	var out []Span
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		out = append(out, sh.spans...)
		sh.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Dur > out[j].Dur
	})
	return out
}

// Len reports how many spans have been recorded so far.
func (t *Tracer) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.spans)
		sh.mu.Unlock()
	}
	return n
}

// current is the process-global tracer; nil means tracing is disabled
// and every instrumentation site reduces to one atomic load.
var current atomic.Pointer[Tracer]

// Enable installs t as the process-global tracer.
func Enable(t *Tracer) { current.Store(t) }

// Disable detaches the global tracer and returns it (nil when tracing
// was already off), so callers can export what was recorded.
func Disable() *Tracer { return current.Swap(nil) }

// Current returns the enabled tracer, or nil when tracing is off.
func Current() *Tracer { return current.Load() }

// Active is an in-flight span handle. The zero value (returned by
// Begin when tracing is off) is inert: every method is a cheap no-op.
// Active is a plain value so the disabled path allocates nothing.
type Active struct {
	t *Tracer
	s Span
}

// Begin starts a span on the global tracer; when tracing is disabled
// it returns the inert zero Active.
func Begin(name, variant string, phase Phase, worker int) Active {
	t := current.Load()
	if t == nil {
		return Active{}
	}
	return BeginOn(t, name, variant, phase, worker)
}

// BeginOn starts a span on an explicit tracer (for call sites that
// already loaded Current once and branch on it). A nil tracer yields
// the inert zero Active.
func BeginOn(t *Tracer, name, variant string, phase Phase, worker int) Active {
	if t == nil {
		return Active{}
	}
	return Active{t: t, s: Span{
		Name: name, Variant: variant, Phase: phase,
		Worker: int32(worker), Start: time.Since(t.epoch),
	}}
}

// Enabled reports whether the span is actually recording.
func (a *Active) Enabled() bool { return a.t != nil }

// Attr annotates the span; dropped when tracing is off.
func (a *Active) Attr(key, val string) {
	if a.t == nil {
		return
	}
	a.s.Attrs = append(a.s.Attrs, Attr{Key: key, Val: val})
}

// End completes the span and records it. Calling End on the zero
// Active (tracing disabled) is a no-op.
func (a *Active) End() {
	if a.t == nil {
		return
	}
	a.s.Dur = time.Since(a.t.epoch) - a.s.Start
	a.t.record(a.s)
	a.t = nil
}

// Emit records an instant event (a point, not an interval) on the
// global tracer; a no-op when tracing is off.
func Emit(name, variant string, phase Phase, worker int, attrs ...Attr) {
	t := current.Load()
	if t == nil {
		return
	}
	t.record(Span{
		Name: name, Variant: variant, Phase: phase, Worker: int32(worker),
		Instant: true, Start: time.Since(t.epoch), Attrs: attrs,
	})
}
