package obs

import (
	"sync"
	"testing"
	"time"
)

// drain detaches any global tracer a prior test left behind.
func drain() { Disable() }

func TestDisabledPathInert(t *testing.T) {
	drain()
	if Current() != nil {
		t.Fatal("tracer enabled at test start")
	}
	sp := Begin("x", "v", PhaseChunk, 3)
	if sp.Enabled() {
		t.Fatal("Begin with no tracer returned an enabled span")
	}
	sp.Attr("k", "v") // must not panic
	sp.End()          // must not panic
	Emit("e", "", PhaseFallback, -1)
	allocs := testing.AllocsPerRun(1000, func() {
		s := Begin("x", "v", PhaseChunk, 3)
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled Begin/End allocates %v per op, want 0", allocs)
	}
}

func TestSpanRecording(t *testing.T) {
	drain()
	tr := New()
	Enable(tr)
	defer Disable()

	sp := Begin("convert", "Ttv/HiCOO@omp", PhaseConvert, -1)
	time.Sleep(time.Millisecond)
	sp.Attr("blocks", "12")
	sp.End()
	Emit("fallback", "Ttv/HiCOO@omp", PhaseFallback, -1, Attr{"to", "serial"})

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	s := spans[0]
	if s.Name != "convert" || s.Variant != "Ttv/HiCOO@omp" || s.Phase != PhaseConvert {
		t.Fatalf("span = %+v", s)
	}
	if s.Dur <= 0 {
		t.Fatalf("span duration %v, want > 0", s.Dur)
	}
	if len(s.Attrs) != 1 || s.Attrs[0].Key != "blocks" {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	ev := spans[1]
	if !ev.Instant || ev.Phase != PhaseFallback || ev.Dur != 0 {
		t.Fatalf("instant = %+v", ev)
	}
	if ev.Start < s.Start {
		t.Fatal("spans not sorted by start")
	}
}

func TestDoubleEndRecordsOnce(t *testing.T) {
	drain()
	tr := New()
	Enable(tr)
	defer Disable()
	sp := Begin("once", "", PhaseSort, 0)
	sp.End()
	sp.End()
	if n := tr.Len(); n != 1 {
		t.Fatalf("double End recorded %d spans, want 1", n)
	}
}

func TestConcurrentRecording(t *testing.T) {
	drain()
	tr := New()
	Enable(tr)
	defer Disable()
	const workers, per = 16, 100
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := Begin("chunk", "v", PhaseChunk, w)
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	if n := tr.Len(); n != workers*per {
		t.Fatalf("recorded %d spans, want %d", n, workers*per)
	}
	spans := tr.Spans()
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatal("Spans() not sorted by start offset")
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	want := map[Phase]string{
		PhasePrepare: "prepare", PhaseConvert: "convert", PhaseSort: "sort",
		PhaseLaunch: "launch", PhaseChunk: "chunk", PhaseReduce: "reduce",
		PhaseVerify: "verify", PhaseFallback: "fallback", PhaseTrial: "trial",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
	if Phase(250).String() != "unknown" {
		t.Error("out-of-range phase should render unknown")
	}
}

func TestCounters(t *testing.T) {
	c := GetCounter("test.counter_a")
	if again := GetCounter("test.counter_a"); again != c {
		t.Fatal("GetCounter not idempotent")
	}
	before := CounterSnapshot()
	c.Inc()
	c.Add(4)
	after := CounterSnapshot()
	d := DiffSnapshot(before, after)
	if d["test.counter_a"] != 5 {
		t.Fatalf("delta = %v, want test.counter_a=5", d)
	}
	// A counter that did not move is elided from the diff.
	GetCounter("test.counter_idle")
	d2 := DiffSnapshot(CounterSnapshot(), CounterSnapshot())
	if _, ok := d2["test.counter_idle"]; ok {
		t.Fatal("idle counter should not appear in diff")
	}
	names := CounterNames()
	found := false
	for _, n := range names {
		if n == "test.counter_a" {
			found = true
		}
	}
	if !found {
		t.Fatalf("CounterNames() = %v, missing test.counter_a", names)
	}
}

func TestCountingGate(t *testing.T) {
	if Counting() {
		t.Fatal("hot-path counting enabled at start")
	}
	EnableCounters(true)
	if !Counting() {
		t.Fatal("EnableCounters(true) did not take")
	}
	EnableCounters(false)
}
