package obs

import (
	"encoding/json"
	"fmt"
)

// ParseChromeTrace decodes a Chrome trace_event document in either of
// its legal top-level shapes: the JSON-object form
// {"traceEvents":[...]} or the bare JSON-array form [...].
func ParseChromeTrace(data []byte) ([]TraceEvent, error) {
	var doc traceDoc
	if err := json.Unmarshal(data, &doc); err == nil && doc.TraceEvents != nil {
		return doc.TraceEvents, nil
	}
	var evs []TraceEvent
	if err := json.Unmarshal(data, &evs); err != nil {
		return nil, fmt.Errorf("obs: not a trace_event document: %w", err)
	}
	return evs, nil
}

// ValidateChromeTrace structurally checks a trace_event document: it
// must parse, every event needs a name and a known phase type, "X"
// complete events need non-negative durations, "B"/"E" duration pairs
// must match per (pid, tid), and timestamps must be monotonically
// non-decreasing in document order. This is the tiny Go checker CI
// runs against benchmark trace artifacts instead of an external tool.
func ValidateChromeTrace(data []byte) error {
	evs, err := ParseChromeTrace(data)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("obs: trace contains no events")
	}
	type lane struct{ pid, tid int }
	open := make(map[lane][]string) // B/E stack per thread lane
	lastTs := make(map[lane]float64)
	for i, ev := range evs {
		where := fmt.Sprintf("event %d (%q)", i, ev.Name)
		if ev.Name == "" {
			return fmt.Errorf("obs: event %d has an empty name", i)
		}
		if ev.Ts < 0 {
			return fmt.Errorf("obs: %s has negative timestamp %v", where, ev.Ts)
		}
		l := lane{ev.Pid, ev.Tid}
		if prev, ok := lastTs[l]; ok && ev.Ts < prev {
			return fmt.Errorf("obs: %s timestamp %v goes backwards (prev %v on pid=%d tid=%d)",
				where, ev.Ts, prev, ev.Pid, ev.Tid)
		}
		lastTs[l] = ev.Ts
		switch ev.Ph {
		case "X":
			if ev.Dur < 0 {
				return fmt.Errorf("obs: %s has negative duration %v", where, ev.Dur)
			}
		case "B":
			open[l] = append(open[l], ev.Name)
		case "E":
			st := open[l]
			if len(st) == 0 {
				return fmt.Errorf("obs: %s is an E event with no open B on pid=%d tid=%d", where, ev.Pid, ev.Tid)
			}
			if top := st[len(st)-1]; top != ev.Name {
				return fmt.Errorf("obs: %s closes %q but %q is open on pid=%d tid=%d", where, ev.Name, top, ev.Pid, ev.Tid)
			}
			open[l] = st[:len(st)-1]
		case "i", "I", "M", "C":
			// instant, metadata, and counter events carry no duration
			// pairing to check
		default:
			return fmt.Errorf("obs: %s has unknown phase type %q", where, ev.Ph)
		}
	}
	for l, st := range open {
		if len(st) > 0 {
			return fmt.Errorf("obs: %d unclosed B event(s) on pid=%d tid=%d (innermost %q)",
				len(st), l.pid, l.tid, st[len(st)-1])
		}
	}
	return nil
}
