package obs

import (
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func sampleSpans() []Span {
	return []Span{
		{Name: "prepare", Variant: "Mttkrp/COO@omp", Phase: PhasePrepare, Worker: -1, Start: 0, Dur: 5 * time.Millisecond},
		{Name: "parallel.For", Phase: PhaseChunk, Worker: -1, Start: time.Millisecond, Dur: 2 * time.Millisecond},
		{Name: "fallback", Variant: "Mttkrp/COO@omp", Phase: PhaseFallback, Worker: -1, Instant: true,
			Start: 6 * time.Millisecond, Attrs: []Attr{{"to", "serial"}}},
		{Name: "gpusim.launch", Variant: "dev0", Phase: PhaseLaunch, Worker: 2, Start: 3 * time.Millisecond, Dur: time.Millisecond},
	}
}

func TestChromeTraceRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	data := []byte(b.String())
	if err := ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported trace failed validation: %v", err)
	}
	evs, err := ParseChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("parsed %d events, want 4", len(evs))
	}
	// Sorted by ts; spans become X, instants become i.
	var sawInstant, sawX bool
	last := -1.0
	for _, ev := range evs {
		if ev.Ts < last {
			t.Fatal("events not ts-sorted")
		}
		last = ev.Ts
		switch ev.Ph {
		case "X":
			sawX = true
		case "i":
			sawInstant = true
			if ev.Args["to"] != "serial" {
				t.Fatalf("instant args = %v", ev.Args)
			}
		}
	}
	if !sawInstant || !sawX {
		t.Fatal("expected both X and i events")
	}
	// Variant travels in args; harness spans land on tid 0.
	if evs[0].Args["variant"] != "Mttkrp/COO@omp" || evs[0].Tid != 0 {
		t.Fatalf("first event = %+v", evs[0])
	}
}

func TestWriteChromeTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteChromeTraceFile(path, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTraceFile(filepath.Join(t.TempDir(), "empty.json"), nil); err == nil {
		t.Fatal("an empty trace must be refused, not written")
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":       `{"traceEvents": [`,
		"empty":          `{"traceEvents": []}`,
		"unnamed":        `{"traceEvents":[{"ph":"X","ts":1,"dur":1,"pid":1,"tid":0}]}`,
		"negative ts":    `{"traceEvents":[{"name":"a","ph":"X","ts":-5,"dur":1,"pid":1,"tid":0}]}`,
		"negative dur":   `{"traceEvents":[{"name":"a","ph":"X","ts":1,"dur":-1,"pid":1,"tid":0}]}`,
		"backwards ts":   `{"traceEvents":[{"name":"a","ph":"X","ts":9,"pid":1,"tid":0},{"name":"b","ph":"X","ts":3,"pid":1,"tid":0}]}`,
		"unknown phase":  `{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":1,"tid":0}]}`,
		"orphan E":       `{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":0}]}`,
		"mismatched B/E": `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":0},{"name":"b","ph":"E","ts":2,"pid":1,"tid":0}]}`,
		"unclosed B":     `{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":0}]}`,
	}
	for name, doc := range cases {
		if err := ValidateChromeTrace([]byte(doc)); err == nil {
			t.Errorf("%s: validation accepted malformed trace", name)
		}
	}
}

func TestValidateAcceptsBEPairs(t *testing.T) {
	doc := `{"traceEvents":[
		{"name":"a","ph":"B","ts":1,"pid":1,"tid":0},
		{"name":"b","ph":"B","ts":2,"pid":1,"tid":0},
		{"name":"b","ph":"E","ts":3,"pid":1,"tid":0},
		{"name":"a","ph":"E","ts":4,"pid":1,"tid":0},
		{"name":"m","ph":"M","ts":4,"pid":1,"tid":0}]}`
	if err := ValidateChromeTrace([]byte(doc)); err != nil {
		t.Fatalf("well-nested B/E rejected: %v", err)
	}
	// The bare-array form is also legal trace JSON.
	arr := `[{"name":"a","ph":"X","ts":1,"dur":2,"pid":1,"tid":0}]`
	if err := ValidateChromeTrace([]byte(arr)); err != nil {
		t.Fatalf("bare-array trace rejected: %v", err)
	}
	// Separate lanes keep independent timestamp order.
	lanes := `{"traceEvents":[
		{"name":"a","ph":"X","ts":9,"pid":1,"tid":0},
		{"name":"b","ph":"X","ts":3,"pid":1,"tid":1}]}`
	if err := ValidateChromeTrace([]byte(lanes)); err != nil {
		t.Fatalf("per-lane timestamps rejected: %v", err)
	}
}

func TestJSONL(t *testing.T) {
	var b strings.Builder
	if err := WriteJSONL(&b, sampleSpans()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("JSONL wrote %d lines, want 4", len(lines))
	}
	if !strings.Contains(lines[0], `"phase":"prepare"`) {
		t.Fatalf("line 0 = %s", lines[0])
	}
}

func TestSummarize(t *testing.T) {
	spans := []Span{
		{Name: "a", Phase: PhaseChunk, Dur: 3 * time.Millisecond},
		{Name: "a", Phase: PhaseChunk, Dur: time.Millisecond},
		{Name: "b", Phase: PhaseSort, Dur: time.Millisecond},
		{Name: "skip", Phase: PhaseFallback, Instant: true},
	}
	sums := Summarize(spans)
	if len(sums) != 2 {
		t.Fatalf("got %d summaries, want 2 (instants excluded)", len(sums))
	}
	if sums[0].Name != "a" || sums[0].Count != 2 || sums[0].Total != 4*time.Millisecond {
		t.Fatalf("top summary = %+v", sums[0])
	}
	if sums[0].Mean() != 2*time.Millisecond || sums[0].Max != 3*time.Millisecond {
		t.Fatalf("mean/max = %v/%v", sums[0].Mean(), sums[0].Max)
	}
	var out strings.Builder
	WriteSummary(&out, spans)
	if !strings.Contains(out.String(), "chunk") {
		t.Fatal("summary table missing phase column")
	}
	WriteCounterSummary(&out, map[string]int64{"x": 3, "idle": 0}, true)
	if strings.Contains(out.String(), "idle") {
		t.Fatal("nonZeroOnly counter summary printed an idle counter")
	}
}
