package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func rec(fig, tensor, kernel, format, backend, source string, g float64) BaselineRecord {
	return BaselineRecord{Figure: fig, Tensor: tensor, Kernel: kernel,
		Format: format, Backend: backend, Source: source, GFLOPS: g}
}

func TestBaselineRoundTrip(t *testing.T) {
	b := NewBaseline()
	b.Add(rec("fig4", "r1", "Mttkrp", "COO", "omp", "measured", 10))
	b.Add(rec("fig4", "r1", "Ttv", "CSF", "omp", "measured", 4))
	path := filepath.Join(t.TempDir(), "base.json")
	if err := b.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got := NewBaseline()
	if err := got.LoadBaselineFile(path); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d records, want 2", got.Len())
	}
	g, ok := got.Lookup(rec("fig4", "r1", "Mttkrp", "COO", "omp", "measured", 0))
	if !ok || g != 10 {
		t.Fatalf("Lookup = %v, %v", g, ok)
	}
}

func TestBaselineReadsSeriesSchema(t *testing.T) {
	dir := t.TempDir()
	series := `{
	  "figure": "fig4",
	  "platform": "Bluesky",
	  "rows": [
	    {"tensor": "r1", "kernel": "Tew", "format": "COO", "gflops": 17.0, "source": "modeled"},
	    {"tensor": "r1", "kernel": "Tew", "format": "HiCOO", "gflops": 18.7, "source": "modeled"}
	  ]
	}`
	if err := os.WriteFile(filepath.Join(dir, "fig4.json"), []byte(series), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaselineDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("loaded %d records, want 2", b.Len())
	}
	// Rows inherit the file's figure scope.
	g, ok := b.Lookup(rec("fig4", "r1", "Tew", "COO", "", "modeled", 0))
	if !ok || g != 17.0 {
		t.Fatalf("series lookup = %v, %v", g, ok)
	}
}

func TestBaselineLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadBaselineDir(dir); err == nil {
		t.Fatal("empty dir must error")
	}
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte(`{"rows": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselineDir(dir); err == nil {
		t.Fatal("rowless file must error")
	}
}

func TestBaselineCheck(t *testing.T) {
	b := NewBaseline()
	b.Add(rec("fig4", "r1", "Mttkrp", "COO", "", "modeled", 10))
	b.Add(rec("fig4", "r1", "Ttv", "COO", "", "modeled", 10))

	current := []BaselineRecord{
		rec("fig4", "r1", "Mttkrp", "COO", "", "modeled", 9.5), // inside band
		rec("fig4", "r1", "Ttv", "COO", "", "modeled", 4),      // regression
		rec("fig4", "r1", "Ttm", "COO", "", "modeled", 0.01),   // no baseline: skipped
	}
	regs, matched := b.Check(current, 0.25)
	if matched != 2 {
		t.Fatalf("matched = %d, want 2", matched)
	}
	if len(regs) != 1 || regs[0].Current != 4 || regs[0].Baseline != 10 {
		t.Fatalf("regs = %v", regs)
	}
	if regs[0].Ratio != 0.4 {
		t.Fatalf("ratio = %v", regs[0].Ratio)
	}
	if regs[0].String() == "" {
		t.Fatal("empty regression rendering")
	}
	// A generous band reports nothing.
	if regs, _ := b.Check(current, 0.9); len(regs) != 0 {
		t.Fatalf("tol=0.9 regs = %v", regs)
	}
}
