// Package contract implements sparse × sparse tensor operations from the
// paper's future-work list (§7): general tensor contraction between two
// sparse tensors along arbitrary mode pairs, and the tensor-times-sparse-
// vector product. Ttm is the dense special case of contraction (§2.4);
// these are the fully sparse generalizations, implemented with a hash
// join over the contracted coordinates.
package contract

import (
	"fmt"

	"repro/internal/tensor"
)

// Contract computes Z = Σ X ∘ Y over the paired modes: xModes[i] of X is
// summed against yModes[i] of Y. The output's modes are X's free modes
// (in order) followed by Y's free modes. Both operands may be in any
// non-zero order; the result is returned sorted in natural order.
//
// The algorithm is an M_Y-space hash join: Y's non-zeros are bucketed by
// their contracted coordinates, then each X non-zero probes its bucket
// and emits products, which are accumulated by output coordinate.
func Contract(x, y *tensor.COO, xModes, yModes []int) (*tensor.COO, error) {
	if len(xModes) != len(yModes) {
		return nil, fmt.Errorf("contract: %d X modes vs %d Y modes", len(xModes), len(yModes))
	}
	if len(xModes) == 0 {
		return nil, fmt.Errorf("contract: need at least one contracted mode pair (outer products explode)")
	}
	if err := checkModes(x, xModes); err != nil {
		return nil, err
	}
	if err := checkModes(y, yModes); err != nil {
		return nil, err
	}
	for i := range xModes {
		if x.Dims[xModes[i]] != y.Dims[yModes[i]] {
			return nil, fmt.Errorf("contract: mode pair (%d,%d) has sizes %d vs %d",
				xModes[i], yModes[i], x.Dims[xModes[i]], y.Dims[yModes[i]])
		}
	}
	xFree := freeModes(x.Order(), xModes)
	yFree := freeModes(y.Order(), yModes)
	outOrder := len(xFree) + len(yFree)
	if outOrder == 0 {
		return nil, fmt.Errorf("contract: full contraction yields a scalar; use InnerProduct")
	}

	// Bucket Y by contracted coordinates.
	type yEntry struct {
		free []tensor.Index
		val  tensor.Value
	}
	buckets := make(map[string][]yEntry, y.NNZ())
	ykey := make([]byte, 4*len(yModes))
	for m := 0; m < y.NNZ(); m++ {
		for i, n := range yModes {
			putIndex(ykey, i, y.Inds[n][m])
		}
		free := make([]tensor.Index, len(yFree))
		for i, n := range yFree {
			free[i] = y.Inds[n][m]
		}
		buckets[string(ykey)] = append(buckets[string(ykey)], yEntry{free, y.Vals[m]})
	}

	// Probe with X, accumulating by output coordinate.
	acc := make(map[string]tensor.Value)
	xkey := make([]byte, 4*len(xModes))
	okey := make([]byte, 4*outOrder)
	for m := 0; m < x.NNZ(); m++ {
		for i, n := range xModes {
			putIndex(xkey, i, x.Inds[n][m])
		}
		bucket, ok := buckets[string(xkey)]
		if !ok {
			continue
		}
		for i, n := range xFree {
			putIndex(okey, i, x.Inds[n][m])
		}
		xv := x.Vals[m]
		for _, ye := range bucket {
			for i, v := range ye.free {
				putIndex(okey, len(xFree)+i, v)
			}
			acc[string(okey)] += xv * ye.val
		}
	}

	// Materialize the output.
	outDims := make([]tensor.Index, 0, outOrder)
	for _, n := range xFree {
		outDims = append(outDims, x.Dims[n])
	}
	for _, n := range yFree {
		outDims = append(outDims, y.Dims[n])
	}
	out := tensor.NewCOO(outDims, len(acc))
	idx := make([]tensor.Index, outOrder)
	for k, v := range acc {
		if v == 0 {
			continue
		}
		for i := range idx {
			idx[i] = getIndex([]byte(k), i)
		}
		out.Append(idx, v)
	}
	out.SortNatural()
	return out, nil
}

// InnerProduct contracts every mode of both tensors (which must share
// their shape), returning the scalar Σ x∘y — the fully sparse dot
// product, accumulated in float64.
func InnerProduct(x, y *tensor.COO) (float64, error) {
	if !tensor.SameShape(x, y) {
		return 0, tensor.ErrShapeMismatch
	}
	ym := make(map[string]float64, y.NNZ())
	key := make([]byte, 4*y.Order())
	for m := 0; m < y.NNZ(); m++ {
		for n := 0; n < y.Order(); n++ {
			putIndex(key, n, y.Inds[n][m])
		}
		ym[string(key)] += float64(y.Vals[m])
	}
	var s float64
	for m := 0; m < x.NNZ(); m++ {
		for n := 0; n < x.Order(); n++ {
			putIndex(key, n, x.Inds[n][m])
		}
		if yv, ok := ym[string(key)]; ok {
			s += float64(x.Vals[m]) * yv
		}
	}
	return s, nil
}

// SpTtv is the tensor-times-SPARSE-vector product in mode n: like Ttv
// (§2.3) but the vector itself is sparse, so only non-zeros of X whose
// mode-n coordinate hits a stored vector entry contribute. The sparse
// vector is given as parallel index/value slices.
func SpTtv(x *tensor.COO, vIdx []tensor.Index, vVal []tensor.Value, mode int) (*tensor.COO, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("contract: SpTtv mode %d out of range", mode)
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("contract: SpTtv needs an order >= 2 tensor")
	}
	if len(vIdx) != len(vVal) {
		return nil, fmt.Errorf("contract: sparse vector has %d indices, %d values", len(vIdx), len(vVal))
	}
	lookup := make(map[tensor.Index]tensor.Value, len(vIdx))
	for i, ix := range vIdx {
		if ix >= x.Dims[mode] {
			return nil, fmt.Errorf("contract: sparse vector index %d out of range [0,%d)", ix, x.Dims[mode])
		}
		lookup[ix] += vVal[i]
	}
	outDims := make([]tensor.Index, 0, x.Order()-1)
	free := freeModes(x.Order(), []int{mode})
	for _, n := range free {
		outDims = append(outDims, x.Dims[n])
	}
	acc := make(map[string]tensor.Value)
	key := make([]byte, 4*len(free))
	for m := 0; m < x.NNZ(); m++ {
		vv, ok := lookup[x.Inds[mode][m]]
		if !ok {
			continue
		}
		for i, n := range free {
			putIndex(key, i, x.Inds[n][m])
		}
		acc[string(key)] += x.Vals[m] * vv
	}
	out := tensor.NewCOO(outDims, len(acc))
	idx := make([]tensor.Index, len(free))
	for k, v := range acc {
		if v == 0 {
			continue
		}
		for i := range idx {
			idx[i] = getIndex([]byte(k), i)
		}
		out.Append(idx, v)
	}
	out.SortNatural()
	return out, nil
}

func checkModes(t *tensor.COO, modes []int) error {
	seen := make(map[int]bool, len(modes))
	for _, n := range modes {
		if n < 0 || n >= t.Order() {
			return fmt.Errorf("contract: mode %d out of range for order-%d tensor", n, t.Order())
		}
		if seen[n] {
			return fmt.Errorf("contract: mode %d listed twice", n)
		}
		seen[n] = true
	}
	return nil
}

func freeModes(order int, contracted []int) []int {
	used := make([]bool, order)
	for _, n := range contracted {
		used[n] = true
	}
	free := make([]int, 0, order-len(contracted))
	for n := 0; n < order; n++ {
		if !used[n] {
			free = append(free, n)
		}
	}
	return free
}

func putIndex(key []byte, slot int, v tensor.Index) {
	k := 4 * slot
	key[k], key[k+1], key[k+2], key[k+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getIndex(key []byte, slot int) tensor.Index {
	k := 4 * slot
	return tensor.Index(key[k]) | tensor.Index(key[k+1])<<8 | tensor.Index(key[k+2])<<16 | tensor.Index(key[k+3])<<24
}
