package contract

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tensor"
)

func TestContractMatricesLikeMatMul(t *testing.T) {
	// Sparse matrix product: Z(i,k) = Σ_j X(i,j) Y(j,k).
	x := tensor.NewCOO([]tensor.Index{2, 3}, 3)
	x.Append([]tensor.Index{0, 0}, 1)
	x.Append([]tensor.Index{0, 2}, 2)
	x.Append([]tensor.Index{1, 1}, 3)
	y := tensor.NewCOO([]tensor.Index{3, 2}, 3)
	y.Append([]tensor.Index{0, 0}, 4)
	y.Append([]tensor.Index{2, 0}, 5)
	y.Append([]tensor.Index{1, 1}, 6)

	z, err := Contract(x, y, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if z.Order() != 2 || z.Dims[0] != 2 || z.Dims[1] != 2 {
		t.Fatalf("output shape %v", z.Dims)
	}
	// Z(0,0) = 1*4 + 2*5 = 14; Z(1,1) = 3*6 = 18.
	if v, _ := z.At(0, 0); v != 14 {
		t.Fatalf("Z(0,0) = %v, want 14", v)
	}
	if v, _ := z.At(1, 1); v != 18 {
		t.Fatalf("Z(1,1) = %v, want 18", v)
	}
	if z.NNZ() != 2 {
		t.Fatalf("nnz %d, want 2", z.NNZ())
	}
}

// refContract computes the contraction densely in float64.
func refContract(x, y *tensor.COO, xModes, yModes []int) map[string]float64 {
	out := make(map[string]float64)
	xi := make([]tensor.Index, x.Order())
	yi := make([]tensor.Index, y.Order())
	xFree := freeModes(x.Order(), xModes)
	yFree := freeModes(y.Order(), yModes)
	for a := 0; a < x.NNZ(); a++ {
		xv := x.Entry(a, xi)
	next:
		for b := 0; b < y.NNZ(); b++ {
			yv := y.Entry(b, yi)
			for i := range xModes {
				if xi[xModes[i]] != yi[yModes[i]] {
					continue next
				}
			}
			key := ""
			for _, n := range xFree {
				key += string(rune(xi[n])) + ","
			}
			for _, n := range yFree {
				key += string(rune(yi[n])) + ","
			}
			out[key] += float64(xv) * float64(yv)
		}
	}
	return out
}

func TestContractAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomCOO([]tensor.Index{8, 9, 10}, 100, rng)
	y := tensor.RandomCOO([]tensor.Index{10, 9, 7}, 100, rng)
	// Contract X modes (1,2) with Y modes (1,0): Z(i, k) over 8×7.
	z, err := Contract(x, y, []int{1, 2}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := refContract(x, y, []int{1, 2}, []int{1, 0})
	var wantNNZ int
	for key, wv := range want {
		if wv != 0 {
			wantNNZ++
		}
		_ = key
	}
	if z.NNZ() != wantNNZ {
		t.Fatalf("nnz %d, want %d", z.NNZ(), wantNNZ)
	}
	// Spot-check totals since key encodings differ.
	var sumGot, sumWant float64
	for _, v := range z.Vals {
		sumGot += float64(v)
	}
	for _, v := range want {
		sumWant += v
	}
	if math.Abs(sumGot-sumWant) > 1e-3*math.Max(1, math.Abs(sumWant)) {
		t.Fatalf("sum %v, want %v", sumGot, sumWant)
	}
	// Element-level check through tensor.At.
	xi := make([]tensor.Index, 3)
	yi := make([]tensor.Index, 3)
	for a := 0; a < x.NNZ(); a++ {
		x.Entry(a, xi)
		for b := 0; b < y.NNZ(); b++ {
			y.Entry(b, yi)
			if xi[1] == yi[1] && xi[2] == yi[0] {
				if _, ok := z.At(xi[0], yi[2]); !ok {
					t.Fatalf("missing output at (%d,%d)", xi[0], yi[2])
				}
			}
		}
	}
}

func TestContractMatchesTtmDenseCase(t *testing.T) {
	// Contracting X's mode n against the first mode of a "matrix tensor"
	// must agree with the dense Ttm kernel.
	rng := rand.New(rand.NewSource(2))
	x := tensor.RandomCOO([]tensor.Index{12, 10, 14}, 200, rng)
	r := 5
	u := tensor.NewMatrix(14, r)
	u.Randomize(rng)
	// Matrix as an order-2 tensor (k, r).
	um := tensor.NewCOO([]tensor.Index{14, tensor.Index(r)}, 14*r)
	for k := 0; k < 14; k++ {
		for c := 0; c < r; c++ {
			um.Append([]tensor.Index{tensor.Index(k), tensor.Index(c)}, u.At(k, c))
		}
	}
	z, err := Contract(x, um, []int{2}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Ttm(x, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	wc := want.ToCOO()
	if d := tensor.AbsDiff(z, wc); d > 1e-3 {
		t.Fatalf("contract vs Ttm diff %v", d)
	}
}

func TestContractErrors(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{4, 4}, 6, rand.New(rand.NewSource(3)))
	y := tensor.RandomCOO([]tensor.Index{5, 5}, 6, rand.New(rand.NewSource(4)))
	if _, err := Contract(x, y, []int{0}, []int{0, 1}); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := Contract(x, y, nil, nil); err == nil {
		t.Fatal("expected empty-contraction error")
	}
	if _, err := Contract(x, y, []int{0}, []int{0}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := Contract(x, y, []int{7}, []int{0}); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Contract(x, x, []int{0, 0}, []int{0, 1}); err == nil {
		t.Fatal("expected duplicate-mode error")
	}
	if _, err := Contract(x, x.Clone(), []int{0, 1}, []int{0, 1}); err == nil {
		t.Fatal("expected scalar-result error")
	}
}

func TestInnerProduct(t *testing.T) {
	x := tensor.NewCOO([]tensor.Index{3, 3}, 2)
	x.Append([]tensor.Index{0, 0}, 2)
	x.Append([]tensor.Index{1, 2}, 3)
	y := tensor.NewCOO([]tensor.Index{3, 3}, 2)
	y.Append([]tensor.Index{1, 2}, 5)
	y.Append([]tensor.Index{2, 2}, 7)
	got, err := InnerProduct(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("inner product %v, want 15", got)
	}
	bad := tensor.NewCOO([]tensor.Index{2, 2}, 0)
	if _, err := InnerProduct(x, bad); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestSpTtvMatchesDenseTtv(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandomCOO([]tensor.Index{15, 20, 12}, 300, rng)
	for mode := 0; mode < 3; mode++ {
		// A sparse vector with ~1/3 of entries set.
		d := int(x.Dims[mode])
		var vIdx []tensor.Index
		var vVal []tensor.Value
		dense := tensor.NewVector(d)
		for i := 0; i < d; i++ {
			if rng.Intn(3) == 0 {
				v := tensor.Value(rng.Float64() + 0.1)
				vIdx = append(vIdx, tensor.Index(i))
				vVal = append(vVal, v)
				dense[i] = v
			}
		}
		got, err := SpTtv(x, vIdx, vVal, mode)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Ttv(x, dense, mode)
		if err != nil {
			t.Fatal(err)
		}
		// SpTtv drops exact-zero outputs; compare as maps.
		gm, wm := got.ToMap(), want.ToMap()
		for k, wv := range wm {
			if math.Abs(float64(gm[k]-wv)) > 1e-3 {
				t.Fatalf("mode %d: SpTtv differs at %q: %v vs %v", mode, k, gm[k], wv)
			}
		}
		for k, gv := range gm {
			if _, ok := wm[k]; !ok && math.Abs(float64(gv)) > 1e-6 {
				t.Fatalf("mode %d: SpTtv extra entry", mode)
			}
		}
	}
}

func TestSpTtvErrors(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{5, 5, 5}, 20, rand.New(rand.NewSource(6)))
	if _, err := SpTtv(x, []tensor.Index{0}, nil, 0); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := SpTtv(x, []tensor.Index{9}, []tensor.Value{1}, 0); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := SpTtv(x, nil, nil, 5); err == nil {
		t.Fatal("expected mode error")
	}
	vec := tensor.NewCOO([]tensor.Index{5}, 0)
	if _, err := SpTtv(vec, nil, nil, 0); err == nil {
		t.Fatal("expected order error")
	}
}

func TestContractProperty(t *testing.T) {
	// Σ Z must equal Σ over matching pairs for random inputs, and the
	// operation must be symmetric under swapping operands (with permuted
	// output modes).
	f := func(seedX, seedY int64) bool {
		rngX := rand.New(rand.NewSource(seedX))
		rngY := rand.New(rand.NewSource(seedY))
		x := tensor.RandomCOO([]tensor.Index{6, 7}, 20, rngX)
		y := tensor.RandomCOO([]tensor.Index{7, 5}, 20, rngY)
		z1, err := Contract(x, y, []int{1}, []int{0})
		if err != nil {
			return false
		}
		z2, err := Contract(y, x, []int{0}, []int{1})
		if err != nil {
			return false
		}
		// z2 has modes (y-free, x-free) = transposed z1.
		if z1.NNZ() != z2.NNZ() {
			return false
		}
		var s1, s2 float64
		for _, v := range z1.Vals {
			s1 += float64(v)
		}
		for _, v := range z2.Vals {
			s2 += float64(v)
		}
		return math.Abs(s1-s2) <= 1e-3*math.Max(1, math.Abs(s1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
