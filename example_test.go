package pasta_test

import (
	"fmt"

	pasta "repro"
)

// Example demonstrates the core workflow: generate a sparse tensor, run
// the preprocessing stage of a kernel once, and execute the value
// computation in parallel.
func Example() {
	rng := pasta.GenerateSeeded(1)
	x, err := pasta.Kronecker([]pasta.Index{64, 64, 64}, 1000, nil, rng)
	if err != nil {
		panic(err)
	}
	plan, err := pasta.PrepareTtv(x, 2) // preprocessing: sort, fptr, output alloc
	if err != nil {
		panic(err)
	}
	v := pasta.NewVector(64)
	for i := range v {
		v[i] = 1
	}
	y, err := plan.ExecuteOMP(v, pasta.Dynamic()) // the timed kernel stage
	if err != nil {
		panic(err)
	}
	fmt.Println("output order:", y.Order())
	fmt.Println("output non-zeros == fibers:", y.NNZ() == plan.NumFibers())
	// Output:
	// output order: 2
	// output non-zeros == fibers: true
}

// ExampleTs shows the simplest kernel: scaling every stored non-zero.
func ExampleTs() {
	x := pasta.NewCOO([]pasta.Index{2, 2}, 2)
	x.Append([]pasta.Index{0, 0}, 2)
	x.Append([]pasta.Index{1, 1}, 3)
	y, err := pasta.Ts(x, 10, pasta.OpMul)
	if err != nil {
		panic(err)
	}
	fmt.Println(y.Vals)
	// Output: [20 30]
}

// ExampleToHiCOO shows HiCOO conversion and its compression statistics.
func ExampleToHiCOO() {
	rng := pasta.GenerateSeeded(2)
	x := pasta.RandomCOO([]pasta.Index{128, 128, 128}, 20000, rng)
	h := pasta.ToHiCOO(x, pasta.DefaultBlockBits)
	st := h.ComputeStats()
	fmt.Println("block size:", h.BlockSize())
	fmt.Println("compresses vs COO:", st.CompressionVsCOO > 1)
	// Output:
	// block size: 128
	// compresses vs COO: true
}

// ExampleMttkrp runs the CP-decomposition bottleneck kernel.
func ExampleMttkrp() {
	x := pasta.NewCOO([]pasta.Index{2, 3, 4}, 1)
	x.Append([]pasta.Index{0, 1, 2}, 2)
	b := pasta.NewMatrix(3, 1)
	b.Set(1, 0, 5)
	c := pasta.NewMatrix(4, 1)
	c.Set(2, 0, 7)
	a, err := pasta.Mttkrp(x, []*pasta.Matrix{nil, b, c}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println(a.At(0, 0)) // 2 * 5 * 7
	// Output: 70
}

// ExampleContract multiplies two sparse matrices as a tensor contraction.
func ExampleContract() {
	x := pasta.NewCOO([]pasta.Index{2, 3}, 2)
	x.Append([]pasta.Index{0, 0}, 2)
	x.Append([]pasta.Index{1, 2}, 3)
	y := pasta.NewCOO([]pasta.Index{3, 2}, 2)
	y.Append([]pasta.Index{0, 1}, 4)
	y.Append([]pasta.Index{2, 0}, 5)
	z, err := pasta.Contract(x, y, []int{1}, []int{0})
	if err != nil {
		panic(err)
	}
	v00, _ := z.At(0, 1)
	v10, _ := z.At(1, 0)
	fmt.Println(v00, v10)
	// Output: 8 15
}

// ExampleCPALS decomposes a tiny exactly-rank-1 tensor.
func ExampleCPALS() {
	// X(i,j) = u(i)·w(j) with u = (1,2), w = (3,4): exactly rank 1.
	x := pasta.NewCOO([]pasta.Index{2, 2}, 4)
	u := []pasta.Value{1, 2}
	w := []pasta.Value{3, 4}
	for i := pasta.Index(0); i < 2; i++ {
		for j := pasta.Index(0); j < 2; j++ {
			x.Append([]pasta.Index{i, j}, u[i]*w[j])
		}
	}
	res, err := pasta.CPALS(x, 1, 50, 1e-10, 1, pasta.Static())
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered rank-1 structure:", res.Fit > 0.999)
	// Output: recovered rank-1 structure: true
}

// ExampleTuckerHOOI shows a Tucker decomposition at full ranks, which is
// exact by construction.
func ExampleTuckerHOOI() {
	rng := pasta.GenerateSeeded(4)
	x := pasta.RandomCOO([]pasta.Index{6, 5, 4}, 60, rng)
	res, err := pasta.TuckerHOOI(x, []int{6, 5, 4}, 10, 1e-9, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("core dims:", res.Core.Dims)
	fmt.Println("exact at full ranks:", res.Fit > 0.999)
	// Output:
	// core dims: [6 5 4]
	// exact at full ranks: true
}

// ExampleDevice runs a kernel on the simulated GPU.
func ExampleDevice() {
	rng := pasta.GenerateSeeded(3)
	x := pasta.RandomCOO([]pasta.Index{32, 32, 32}, 500, rng)
	plan, err := pasta.PrepareTs(x, 2, pasta.OpMul)
	if err != nil {
		panic(err)
	}
	dev := pasta.NewDevice("example-gpu", 4)
	out := plan.ExecuteGPU(dev)
	fmt.Println("scaled:", out.Vals[0] == 2*x.Vals[0])
	// Output: scaled: true
}
