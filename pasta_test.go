package pasta_test

import (
	"math"
	"testing"

	pasta "repro"
)

// TestPublicAPIEndToEnd drives the whole public surface the way the
// README shows: generate, convert, run every kernel on CPU and the
// simulated GPU, and decompose.
func TestPublicAPIEndToEnd(t *testing.T) {
	rng := pasta.GenerateSeeded(1)
	x, err := pasta.Kronecker([]pasta.Index{256, 256, 256}, 5000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}

	// Formats.
	h := pasta.ToHiCOO(x, pasta.DefaultBlockBits)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	g := pasta.ToGHiCOOExceptMode(x, 2, pasta.DefaultBlockBits)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := pasta.ToCSF(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NNZ() != x.NNZ() || g.NNZ() != x.NNZ() || c.NNZ() != x.NNZ() {
		t.Fatal("formats disagree on nnz")
	}

	dev := pasta.NewDevice("t", 0)

	// Tew.
	y := x.Clone()
	for i := range y.Vals {
		y.Vals[i] = 1
	}
	tew, err := pasta.PrepareTew(x, y, pasta.OpAdd)
	if err != nil {
		t.Fatal(err)
	}
	z1 := append([]pasta.Value(nil), tew.ExecuteSeq().Vals...)
	tew.ExecuteOMP(pasta.Dynamic())
	z2 := append([]pasta.Value(nil), tew.Out.Vals...)
	tew.ExecuteGPU(dev)
	for i := range z1 {
		if z1[i] != z2[i] || z1[i] != tew.Out.Vals[i] {
			t.Fatal("Tew implementations disagree")
		}
	}

	// Ttv in each mode, COO vs HiCOO vs CSF-leaf.
	for mode := 0; mode < 3; mode++ {
		v := pasta.RandomVector(int(x.Dim(mode)), rng)
		pc, err := pasta.PrepareTtv(x, mode)
		if err != nil {
			t.Fatal(err)
		}
		yc, err := pc.ExecuteOMP(v, pasta.Guided())
		if err != nil {
			t.Fatal(err)
		}
		ph, err := pasta.PrepareTtvHiCOO(x, mode, pasta.DefaultBlockBits)
		if err != nil {
			t.Fatal(err)
		}
		yh, err := ph.ExecuteSeq(v)
		if err != nil {
			t.Fatal(err)
		}
		mo := []int{}
		for n := 0; n < 3; n++ {
			if n != mode {
				mo = append(mo, n)
			}
		}
		cs, err := pasta.ToCSF(x, append(mo, mode))
		if err != nil {
			t.Fatal(err)
		}
		ys, err := cs.TtvLeaf(v, pasta.Static())
		if err != nil {
			t.Fatal(err)
		}
		a := yc.ToMap()
		b := yh.ToCOO().ToMap()
		d := ys.ToMap()
		if len(a) != len(b) || len(a) != len(d) {
			t.Fatalf("mode %d: Ttv nnz differ: COO %d, HiCOO %d, CSF %d", mode, len(a), len(b), len(d))
		}
		for k, av := range a {
			if math.Abs(float64(av-b[k])) > 1e-3 || math.Abs(float64(av-d[k])) > 1e-3 {
				t.Fatalf("mode %d: Ttv values differ at %q", mode, k)
			}
		}
	}

	// Mttkrp: COO atomic vs HiCOO blocks vs GPU.
	mats := make([]*pasta.Matrix, 3)
	for n := range mats {
		mats[n] = pasta.NewMatrix(int(x.Dim(n)), 8)
		mats[n].Randomize(rng)
	}
	mk, err := pasta.PrepareMttkrp(x, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := mk.ExecuteSeq(mats)
	if err != nil {
		t.Fatal(err)
	}
	refCopy := append([]pasta.Value(nil), ref.Data...)
	mkh, err := pasta.PrepareMttkrpHiCOO(h, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	hOut, err := mkh.ExecuteOMP(mats, pasta.Dynamic())
	if err != nil {
		t.Fatal(err)
	}
	gOut, err := mk.ExecuteGPU(dev, mats)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refCopy {
		if math.Abs(float64(refCopy[i]-hOut.Data[i])) > 1e-2 {
			t.Fatal("HiCOO Mttkrp diverges")
		}
		if math.Abs(float64(refCopy[i]-gOut.Data[i])) > 1e-2 {
			t.Fatal("GPU Mttkrp diverges")
		}
	}
}

func TestFacadeDatasets(t *testing.T) {
	if len(pasta.RealTensors()) != 15 || len(pasta.SyntheticTensors()) != 15 {
		t.Fatal("dataset registries wrong size")
	}
	e, err := pasta.DatasetByID("irrS")
	if err != nil {
		t.Fatal(err)
	}
	x, err := pasta.Materialize(e, 1500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 3 {
		t.Fatal("materialized wrong order")
	}
}

func TestFacadePlatformsAndRoofline(t *testing.T) {
	if len(pasta.Platforms()) != 4 {
		t.Fatal("want 4 platforms")
	}
	p, err := pasta.PlatformByName("DGX-1V")
	if err != nil {
		t.Fatal(err)
	}
	if got := pasta.RooflineAttainable(p, 0.125); math.Abs(got-0.125*p.ERTDRAMGBs) > 1e-9 {
		t.Fatalf("roofline = %v", got)
	}
	cfg := pasta.DefaultBenchConfig()
	if cfg.R != pasta.DefaultR {
		t.Fatal("config R mismatch")
	}
	rng := pasta.GenerateSeeded(9)
	x := pasta.RandomCOO([]pasta.Index{40, 40, 40}, 2000, rng)
	r := pasta.ModelKernel(p, x, 0 /* Tew */, 0 /* COO */, cfg)
	if r.GFLOPS <= 0 {
		t.Fatal("model returned nothing")
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	rng := pasta.GenerateSeeded(11)
	x := pasta.RandomCOO([]pasta.Index{20, 20, 20}, 400, rng)
	res, err := pasta.CPALS(x, 4, 10, 1e-5, 1, pasta.Dynamic())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit <= 0 {
		t.Fatal("CPALS made no progress")
	}
	r1, err := pasta.PowerMethod(x, 20, 1e-6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Lambda <= 0 {
		t.Fatal("power method degenerate")
	}
	mats := []*pasta.Matrix{pasta.NewMatrix(20, 2), pasta.NewMatrix(20, 2), pasta.NewMatrix(20, 2)}
	for _, m := range mats {
		m.Randomize(rng)
	}
	core, err := pasta.TTMChain(x, mats)
	if err != nil {
		t.Fatal(err)
	}
	if core.NumEl() != 8 {
		t.Fatalf("core size %d, want 8", core.NumEl())
	}
}

func TestFacadeThreadsControl(t *testing.T) {
	pasta.SetNumThreads(2)
	defer pasta.SetNumThreads(0)
	rng := pasta.GenerateSeeded(12)
	x := pasta.RandomCOO([]pasta.Index{30, 30, 30}, 900, rng)
	p, err := pasta.PrepareTs(x, 2, pasta.OpMul)
	if err != nil {
		t.Fatal(err)
	}
	out := p.ExecuteOMP(pasta.Static())
	for i := range out.Vals {
		if out.Vals[i] != 2*x.Vals[i] {
			t.Fatal("Ts wrong under restricted threads")
		}
	}
}
