package pasta_test

import (
	"math"
	"testing"

	pasta "repro"
	"repro/internal/dataset"
	"repro/internal/tensor"
)

// TestAllDatasetEntriesThroughAllFormats materializes every Table 2/3
// entry at small scale and round-trips it through every format the suite
// implements, checking content equality — the whole-system structural
// invariant.
func TestAllDatasetEntriesThroughAllFormats(t *testing.T) {
	for _, e := range append(pasta.RealTensors(), pasta.SyntheticTensors()...) {
		x, err := pasta.Materialize(e, 1200, 11)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		h := pasta.ToHiCOO(x, pasta.DefaultBlockBits)
		if err := h.Validate(); err != nil {
			t.Fatalf("%s HiCOO: %v", e.ID, err)
		}
		if d := tensor.AbsDiff(x, h.ToCOO()); d != 0 {
			t.Fatalf("%s HiCOO roundtrip diff %v", e.ID, d)
		}
		g := pasta.ToGHiCOOExceptMode(x, x.Order()-1, pasta.DefaultBlockBits)
		if err := g.Validate(); err != nil {
			t.Fatalf("%s gHiCOO: %v", e.ID, err)
		}
		if d := tensor.AbsDiff(x, g.ToCOO()); d != 0 {
			t.Fatalf("%s gHiCOO roundtrip diff %v", e.ID, d)
		}
		c, err := pasta.ToCSF(x, nil)
		if err != nil {
			t.Fatalf("%s CSF: %v", e.ID, err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("%s CSF validate: %v", e.ID, err)
		}
		if d := tensor.AbsDiff(x, c.ToCOO()); d != 0 {
			t.Fatalf("%s CSF roundtrip diff %v", e.ID, d)
		}
		f, err := pasta.ToFCOO(x, 0, 0)
		if err != nil {
			t.Fatalf("%s F-COO: %v", e.ID, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("%s F-COO validate: %v", e.ID, err)
		}
	}
}

// TestDecompositionPipelineOnStandIn runs the three tensor methods
// end-to-end on a dataset stand-in and checks their fits are sane and
// ordered (more expressive models fit at least as well).
func TestDecompositionPipelineOnStandIn(t *testing.T) {
	e, err := dataset.ByID("nips4d")
	if err != nil {
		t.Fatal(err)
	}
	x, err := dataset.Materialize(e, 1500, 13)
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := pasta.CPALS(x, 2, 15, 1e-6, 1, pasta.Dynamic())
	if err != nil {
		t.Fatal(err)
	}
	cp8, err := pasta.CPALS(x, 8, 15, 1e-6, 1, pasta.Dynamic())
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Fit <= 0 || cp8.Fit <= 0 {
		t.Fatalf("CP fits must be positive: %v %v", cp2.Fit, cp8.Fit)
	}
	if cp8.Fit < cp2.Fit-0.02 {
		t.Fatalf("rank-8 fit %v noticeably below rank-2 fit %v", cp8.Fit, cp2.Fit)
	}
	nn, err := pasta.NNCP(x, 4, 25, 1e-6, 2, pasta.Dynamic())
	if err != nil {
		t.Fatal(err)
	}
	if nn.Fit <= 0 || nn.Fit > 1 {
		t.Fatalf("NNCP fit %v", nn.Fit)
	}
	pm, err := pasta.PowerMethod(x, 25, 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pm.Lambda <= 0 {
		t.Fatal("power method found no component")
	}
}

// TestKernelChainConsistency contracts a tensor down to a scalar via two
// independent kernel routes and compares: Ttv chain versus Ttm with R=1
// then summation.
func TestKernelChainConsistency(t *testing.T) {
	rng := pasta.GenerateSeeded(17)
	x := pasta.RandomCOO([]pasta.Index{25, 20, 15}, 600, rng)
	v0 := pasta.RandomVector(25, rng)
	v1 := pasta.RandomVector(20, rng)
	v2 := pasta.RandomVector(15, rng)

	// Route 1: TtvChain to a vector in mode 0, then dot.
	y, err := pasta.TtvChain(x, []pasta.Vector{nil, v1, v2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(y.Dot(v0))

	// Route 2: Ttm with the vectors as R=1 matrices, summing the final
	// semi-sparse scalar field.
	m0 := pasta.NewMatrix(25, 1)
	copy(m0.Data, v0)
	s, err := pasta.Ttm(x, m0, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := pasta.TtvSemi(s, v1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s3, err := pasta.TtvSemi(s2, v2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var got float64
	for _, v := range s3.Vals {
		got += float64(v)
	}
	if math.Abs(got-want) > 1e-3*math.Max(1, math.Abs(want)) {
		t.Fatalf("routes disagree: %v vs %v", got, want)
	}
}

// TestVerifyStyleSweep is a compact in-process version of cmd/pastaverify:
// for a couple of generator classes, every implementation of Ttv and
// Mttkrp must agree.
func TestVerifyStyleSweep(t *testing.T) {
	rng := pasta.GenerateSeeded(19)
	tensors := map[string]*pasta.COO{}
	kr, err := pasta.Kronecker([]pasta.Index{512, 512, 512}, 3000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	tensors["kron"] = kr
	pl, err := pasta.PowerLaw(pasta.PowerLawConfig{
		Dims: []pasta.Index{4000, 4000, 20}, SparseModes: []int{0, 1}, NNZ: 3000,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	tensors["pl"] = pl

	dev := pasta.NewDevice("sweep", 4)
	for name, x := range tensors {
		v := pasta.RandomVector(int(x.Dim(0)), rng)
		p, err := pasta.PrepareTtv(x, 0)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := p.ExecuteSeq(v)
		if err != nil {
			t.Fatal(err)
		}
		refVals := append([]pasta.Value(nil), ref.Vals...)
		if _, err := p.ExecuteGPU(dev, v); err != nil {
			t.Fatal(err)
		}
		for i := range refVals {
			if p.Out.Vals[i] != refVals[i] {
				t.Fatalf("%s: GPU Ttv diverges at %d", name, i)
			}
		}
		fc, err := pasta.ToFCOO(x, 0, 128)
		if err != nil {
			t.Fatal(err)
		}
		fOut, err := fc.TtvGPU(dev, v)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.AbsDiff(fOut, ref); d > 1e-3 {
			t.Fatalf("%s: F-COO Ttv diff %v", name, d)
		}
	}
}
