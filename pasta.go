package pasta

import (
	"math/rand"

	"repro/internal/algo"
	"repro/internal/contract"
	"repro/internal/core"
	"repro/internal/csf"
	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/fcoo"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/reorder"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// Scalar and tensor types.
type (
	// Value is the element type (single precision, as in the paper).
	Value = tensor.Value
	// Index is the 32-bit coordinate type.
	Index = tensor.Index
	// COO is a sparse tensor in coordinate format.
	COO = tensor.COO
	// SemiCOO is the sCOO semi-sparse format (dense modes stored densely).
	SemiCOO = tensor.SemiCOO
	// Matrix is a dense row-major factor matrix.
	Matrix = tensor.Matrix
	// Vector is a dense vector.
	Vector = tensor.Vector
	// HiCOO is the hierarchical coordinate format.
	HiCOO = hicoo.HiCOO
	// GHiCOO is the generalized HiCOO with selectable compressed modes.
	GHiCOO = hicoo.GHiCOO
	// SemiHiCOO is the semi-sparse HiCOO variant.
	SemiHiCOO = hicoo.SemiHiCOO
	// CSF is the compressed sparse fiber format (extension, paper §7).
	CSF = csf.CSF
	// FCOO is the flagged COO format for segmented GPU kernels (§3 cite).
	FCOO = fcoo.FCOO
	// Device is the simulated CUDA device GPU kernels run on.
	Device = gpusim.Device
	// FiberStats summarizes a tensor's fiber-length distribution.
	FiberStats = tensor.FiberStats
	// LoadStats reports tensor-load throughput (bytes, nnz, elapsed).
	LoadStats = tensor.LoadStats
)

// Kernel plan types: Prepare* performs the preprocessing stage (sorting,
// fiber detection, output allocation), Execute{Seq,OMP,GPU} the timed
// value computation.
type (
	// TewPlan is the COO element-wise kernel plan.
	TewPlan = core.TewPlan
	// TsPlan is the COO tensor-scalar kernel plan.
	TsPlan = core.TsPlan
	// TtvPlan is the COO tensor-times-vector kernel plan.
	TtvPlan = core.TtvPlan
	// TtmPlan is the COO tensor-times-matrix kernel plan.
	TtmPlan = core.TtmPlan
	// MttkrpPlan is the COO Mttkrp kernel plan.
	MttkrpPlan = core.MttkrpPlan
	// TewHiCOOPlan is the HiCOO element-wise kernel plan.
	TewHiCOOPlan = core.TewHiCOOPlan
	// TsHiCOOPlan is the HiCOO tensor-scalar kernel plan.
	TsHiCOOPlan = core.TsHiCOOPlan
	// TtvHiCOOPlan is the HiCOO (gHiCOO-input) Ttv kernel plan.
	TtvHiCOOPlan = core.TtvHiCOOPlan
	// TtmHiCOOPlan is the HiCOO Ttm kernel plan (sHiCOO output).
	TtmHiCOOPlan = core.TtmHiCOOPlan
	// MttkrpHiCOOPlan is the HiCOO Mttkrp kernel plan (Algorithm 2).
	MttkrpHiCOOPlan = core.MttkrpHiCOOPlan
	// Op selects an element-wise operation.
	Op = core.Op
	// Options configures OpenMP-style loop scheduling.
	Options = parallel.Options
	// Strategy selects the reduction-update strategy of the OMP kernels.
	Strategy = parallel.Strategy
	// WorkspaceStats reports the pooled reduction-workspace counters.
	WorkspaceStats = parallel.WorkspaceStats
)

// Reduction strategies (Options.Strategy).
const (
	// StrategyAuto lets the runtime pick per call from the reduction shape.
	StrategyAuto = parallel.Auto
	// StrategyOwner forces the race-free owner-computes decomposition.
	StrategyOwner = parallel.Owner
	// StrategyAtomic forces racy updates guarded by atomic float adds.
	StrategyAtomic = parallel.Atomic
	// StrategyPrivatized forces pooled per-worker private outputs + merge.
	StrategyPrivatized = parallel.Privatized
)

// ReductionWorkspaceStats reports hit/miss/retained-bytes counters of the
// shared privatization workspace pool.
func ReductionWorkspaceStats() WorkspaceStats { return parallel.SharedWorkspace().Stats() }

// Element-wise operations.
const (
	// OpAdd is addition.
	OpAdd = core.Add
	// OpSub is subtraction.
	OpSub = core.Sub
	// OpMul is multiplication.
	OpMul = core.Mul
	// OpDiv is division.
	OpDiv = core.Div
)

// DefaultR is the paper's factor-matrix column count (16).
const DefaultR = core.DefaultR

// DefaultBlockBits is log2 of the paper's HiCOO block size (B=128).
const DefaultBlockBits = hicoo.DefaultBlockBits

// Tensor constructors and I/O.
var (
	// NewCOO returns an empty COO tensor.
	NewCOO = tensor.NewCOO
	// NewMatrix returns a zeroed dense matrix.
	NewMatrix = tensor.NewMatrix
	// NewVector returns a zeroed dense vector.
	NewVector = tensor.NewVector
	// RandomVector returns a uniform random vector.
	RandomVector = tensor.RandomVector
	// RandomCOO generates a uniformly sparse random tensor.
	RandomCOO = tensor.RandomCOO
	// ReadTNS parses the FROSTT .tns text format.
	ReadTNS = tensor.ReadTNS
	// ReadTNSFile reads a .tns file.
	ReadTNSFile = tensor.ReadTNSFile
	// ParseTNS parses in-memory .tns bytes, in parallel on large inputs.
	ParseTNS = tensor.ParseTNS
	// WriteTNS emits the FROSTT .tns text format.
	WriteTNS = tensor.WriteTNS
	// WriteTNSFile writes a .tns file.
	WriteTNSFile = tensor.WriteTNSFile
	// ReadBinary parses the PSTB binary format (v1 or v2).
	ReadBinary = tensor.ReadBinary
	// WriteBinary emits the checksummed PSTB v2 binary format.
	WriteBinary = tensor.WriteBinary
	// ReadTensorFile loads .bten / .tns / .tns.gz by extension.
	ReadTensorFile = tensor.ReadFile
	// ReadTensorFileStats loads like ReadTensorFile and also reports
	// load throughput.
	ReadTensorFileStats = tensor.ReadFileStats
	// WriteTensorFile stores .bten / .tns / .tns.gz by extension.
	WriteTensorFile = tensor.WriteFile
	// ComputeFiberStats measures a tensor's mode-n fiber distribution.
	ComputeFiberStats = tensor.ComputeFiberStats
)

// Format conversions.
var (
	// ToHiCOO converts COO → HiCOO with the given block bits (log2 B).
	ToHiCOO = hicoo.FromCOO
	// ToGHiCOO converts COO → gHiCOO compressing the listed modes.
	ToGHiCOO = hicoo.FromCOOModes
	// ToGHiCOOExceptMode compresses every mode but one (Ttv/Ttm input).
	ToGHiCOOExceptMode = hicoo.FromCOOExceptMode
	// ToCSF converts COO → CSF with the given level→mode order.
	ToCSF = csf.FromCOO
	// ToFCOO converts COO → mode-specific F-COO (Ttv layout).
	ToFCOO = fcoo.FromCOO
	// ToFCOOMttkrp converts COO → F-COO in the Mttkrp (output-mode) layout.
	ToFCOOMttkrp = fcoo.FromCOOMttkrp
)

// One-shot sequential kernels (prepare + execute).
var (
	// Tew computes Z = X op Y element-wise.
	Tew = core.Tew
	// Ts computes Y = X op s on the non-zero values.
	Ts = core.Ts
	// Ttv computes Y = X ×ₙ v.
	Ttv = core.Ttv
	// Ttm computes Y = X ×ₙ U (sCOO output).
	Ttm = core.Ttm
	// TtmSemi computes Y = X ×ₙ U for a semi-sparse (sCOO) input.
	TtmSemi = core.TtmSemi
	// TtvSemi computes Y = X ×ₙ v for a semi-sparse (sCOO) input.
	TtvSemi = core.TtvSemi
	// Mttkrp computes Ã = X₍ₙ₎ (⨀_{m≠n} U⁽ᵐ⁾).
	Mttkrp = core.Mttkrp
)

// Kernel plans (preprocessing/execution split, as benchmarked).
var (
	// PrepareTew builds a COO element-wise plan.
	PrepareTew = core.PrepareTew
	// PrepareTs builds a COO tensor-scalar plan.
	PrepareTs = core.PrepareTs
	// PrepareTtv builds a COO Ttv plan for a mode.
	PrepareTtv = core.PrepareTtv
	// PrepareTtm builds a COO Ttm plan for a mode and R.
	PrepareTtm = core.PrepareTtm
	// PrepareMttkrp builds a COO Mttkrp plan for a mode and R.
	PrepareMttkrp = core.PrepareMttkrp
	// PrepareTtmSemi builds a semi-sparse Ttm plan (TTM-chain steps).
	PrepareTtmSemi = core.PrepareTtmSemi
	// PrepareTewHiCOO builds a HiCOO element-wise plan.
	PrepareTewHiCOO = core.PrepareTewHiCOO
	// PrepareTsHiCOO builds a HiCOO tensor-scalar plan.
	PrepareTsHiCOO = core.PrepareTsHiCOO
	// PrepareTtvHiCOO builds a HiCOO Ttv plan (gHiCOO input).
	PrepareTtvHiCOO = core.PrepareTtvHiCOO
	// PrepareTtmHiCOO builds a HiCOO Ttm plan (sHiCOO output).
	PrepareTtmHiCOO = core.PrepareTtmHiCOO
	// PrepareMttkrpHiCOO builds a HiCOO Mttkrp plan (Algorithm 2).
	PrepareMttkrpHiCOO = core.PrepareMttkrpHiCOO
)

// Dynamic returns the dynamic-scheduling options recommended for skewed
// fiber lengths.
func Dynamic() Options { return Options{Schedule: parallel.Dynamic} }

// Static returns static-scheduling options.
func Static() Options { return Options{Schedule: parallel.Static} }

// Guided returns guided-scheduling options.
func Guided() Options { return Options{Schedule: parallel.Guided} }

// SetNumThreads overrides the CPU worker count (OMP_NUM_THREADS).
func SetNumThreads(n int) { parallel.SetNumThreads(n) }

// NewDevice returns a simulated CUDA device with the given SM count
// (0 selects the host core count).
var NewDevice = gpusim.NewDevice

// Distributed-memory execution (extension; §7 "distributed systems").
type (
	// Comm is a simulated message-passing communicator over P ranks.
	Comm = dist.Comm
	// NetworkModel is the alpha-beta communication cost model.
	NetworkModel = dist.NetworkModel
	// DistEngine shards a tensor across simulated workers and runs
	// Mttkrp, Ttv, and CP-ALS with fault-tolerant re-shard retry.
	DistEngine = dist.Engine
	// DistOptions configures a DistEngine (ranks, shard format, network).
	DistOptions = dist.Options
	// DistStats reports a DistEngine's attempts, failures, and comm traffic.
	DistStats = dist.Stats
	// RankError identifies which simulated rank failed a collective.
	RankError = dist.RankError
)

var (
	// NewComm builds a communicator over p ranks.
	NewComm = dist.NewComm
	// NewDistEngine builds a fault-tolerant sharded execution engine.
	NewDistEngine = dist.NewEngine
	// DistMttkrp runs Mttkrp with sharded non-zeros + ring allreduce.
	DistMttkrp = dist.Mttkrp
	// DistTtv runs Ttv with sharded fibers + gather, comm routed through
	// the communicator and costed by the network model.
	DistTtv = dist.Ttv
	// DefaultNetwork approximates a 100 Gb/s interconnect.
	DefaultNetwork = dist.DefaultNetwork
)

// Shard-format selectors for DistOptions.
const (
	DistFormatCOO   = dist.FormatCOO
	DistFormatHiCOO = dist.FormatHiCOO
)

// Synthetic tensor generation (§4.2).
type (
	// Initiator is the Kronecker initiator tensor τ₁.
	Initiator = gen.Initiator
	// PowerLawConfig configures the biased power-law generator.
	PowerLawConfig = gen.PowerLawConfig
)

var (
	// Kronecker generates a tensor from the stochastic Kronecker model.
	Kronecker = gen.Kronecker
	// DefaultInitiator returns the RMAT-style corner-biased initiator.
	DefaultInitiator = gen.DefaultInitiator
	// PowerLaw generates a tensor from the biased power-law model.
	PowerLaw = gen.PowerLaw
)

// Tensor methods built on the kernels (§2 applications, §7 extensions).
type (
	// CPResult is a CP decomposition.
	CPResult = algo.CPResult
	// RankOneResult is a rank-1 (power method) approximation.
	RankOneResult = algo.RankOneResult
	// TuckerResult is a Tucker decomposition (core + orthonormal factors).
	TuckerResult = algo.TuckerResult
	// DenseTensor is a small dense core tensor.
	DenseTensor = algo.DenseTensor
)

var (
	// CPALS runs CANDECOMP/PARAFAC alternating least squares.
	CPALS = algo.CPALS
	// NNCP runs nonnegative CP via multiplicative updates.
	NNCP = algo.NNCP
	// PowerMethod runs the higher-order power method.
	PowerMethod = algo.PowerMethod
	// TtvChain contracts all modes but one against vectors.
	TtvChain = algo.TtvChain
	// TTMChain computes a Tucker-style core via chained Ttm.
	TTMChain = algo.TTMChain
	// TuckerHOOI runs higher-order orthogonal iteration (Tucker).
	TuckerHOOI = algo.TuckerHOOI
	// Contract computes a sparse × sparse tensor contraction (§7).
	Contract = contract.Contract
	// InnerProduct is the fully sparse tensor dot product.
	InnerProduct = contract.InnerProduct
	// SpTtv is tensor-times-sparse-vector (§7).
	SpTtv = contract.SpTtv
)

// Performance analysis (Table 1, Figure 3, Figures 4-7).
type (
	// Platform describes one Table 4 machine.
	Platform = platform.Platform
	// RooflineParams carries the Table 1 formula inputs.
	RooflineParams = roofline.Params
	// BenchConfig holds the experiment parameters of §5.1.2.
	BenchConfig = metrics.Config
	// BenchResult is one performance point of Figures 4-7.
	BenchResult = metrics.Result
	// DatasetEntry describes one Table 2/3 tensor.
	DatasetEntry = dataset.Entry
)

var (
	// Platforms returns the four Table 4 machines.
	Platforms = platform.All
	// PlatformByName resolves a platform by name.
	PlatformByName = platform.ByName
	// MeasureHostPlatform runs the ERT micro-benchmarks on the host.
	MeasureHostPlatform = roofline.MeasureHost
	// RooflineAttainable returns min(peak, OI × ERT-DRAM bandwidth).
	RooflineAttainable = roofline.Attainable
	// DefaultBenchConfig returns the paper's experiment configuration.
	DefaultBenchConfig = metrics.DefaultConfig
	// MeasureHostKernel times one kernel×format on the host.
	MeasureHostKernel = metrics.MeasureHost
	// ModelKernel predicts one kernel×format on a modeled platform.
	ModelKernel = metrics.Model
	// RealTensors returns the Table 2 registry.
	RealTensors = dataset.RealTensors
	// SyntheticTensors returns the Table 3 registry.
	SyntheticTensors = dataset.Synthetic
	// DatasetByID resolves a dataset entry by ID or name.
	DatasetByID = dataset.ByID
	// Materialize produces a dataset tensor (real file or scaled stand-in).
	Materialize = dataset.Materialize
)

// GenerateSeeded returns a deterministic RNG for reproducible tensor
// generation.
func GenerateSeeded(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Reordering (extension; §3.2.1 cites reordering as the locality lever
// for the irregular gathers of Ttv/Ttm/Mttkrp).
type (
	// Reordering is a per-mode index relabeling.
	Reordering = reorder.Perm
)

var (
	// ReorderIdentity returns the identity relabeling.
	ReorderIdentity = reorder.Identity
	// ReorderRandom returns a uniform random relabeling (locality baseline).
	ReorderRandom = reorder.Random
	// ReorderByDegree packs heavy indices first per mode.
	ReorderByDegree = reorder.ByDegree
	// ReorderFirstTouch relabels indices in fiber-sweep first-touch order.
	ReorderFirstTouch = reorder.FirstTouch
)
