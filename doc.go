// Package pasta is a Go reproduction of "A Parallel Sparse Tensor
// Benchmark Suite on CPUs and GPUs" (Li et al., 2020): reference
// implementations of five sparse tensor kernels — element-wise (Tew),
// tensor-scalar (Ts), tensor-times-vector (Ttv), tensor-times-matrix
// (Ttm), and the matricized tensor times Khatri-Rao product (Mttkrp) —
// in COO and HiCOO formats, on multicore CPUs (an OpenMP-style runtime)
// and on a simulated CUDA device, together with the paper's synthetic
// tensor generators, datasets, Roofline models, and a harness that
// regenerates every table and figure of the evaluation.
//
// This root package is a facade re-exporting the stable public API; the
// implementation lives under internal/. A typical session:
//
//	x, _ := pasta.Kronecker([]pasta.Index{1 << 16, 1 << 16, 1 << 16}, 1_000_000, nil, rng)
//	v := pasta.RandomVector(1<<16, rng)
//	plan, _ := pasta.PrepareTtv(x, 2)           // preprocessing (sort, fptr, output alloc)
//	y, _ := plan.ExecuteOMP(v, pasta.Dynamic()) // the timed kernel
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and experiment index, and EXPERIMENTS.md for paper-versus-
// measured results.
package pasta
